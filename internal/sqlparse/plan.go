// Query planning. The planner is rule-based: it decomposes the WHERE clause
// into AND-ed conjuncts, pushes every single-table conjunct below the joins to
// the table it references, and picks an access path per base table —
// hash-index lookup for equality/IN predicates, ordered-index range scan for
// range predicates, full scan as the fallback — with the unconsumed residual
// applied as a filter over the narrowed stream. Joins materialize the smaller
// estimated input as the hash-build side. EXPLAIN renders the chosen plan
// tree without executing it (all access paths materialize lazily).
package sqlparse

import (
	"fmt"
	"sort"
	"strings"

	"flordb/internal/relation"
)

// PlanNode is one operator of a chosen query plan, used by EXPLAIN.
type PlanNode struct {
	Op       string // Scan, IndexLookup, IndexRange, Filter, HashJoin, ...
	Detail   string
	Batched  bool // operator executes batch-at-a-time (vectorized)
	Children []*PlanNode
}

// Lines renders the plan tree as indented text, one operator per line.
func (n *PlanNode) Lines() []string {
	var out []string
	n.render(&out, 0)
	return out
}

func (n *PlanNode) render(out *[]string, depth int) {
	line := strings.Repeat("  ", depth) + n.Op
	if n.Detail != "" {
		line += " " + n.Detail
	}
	if n.Batched {
		line += " batched=true"
	}
	*out = append(*out, line)
	for _, c := range n.Children {
		c.render(out, depth+1)
	}
}

// String renders the plan as one newline-joined string.
func (n *PlanNode) String() string { return strings.Join(n.Lines(), "\n") }

// execCtx threads deferred evaluation errors through a query pipeline. Filter
// and projection closures cannot return errors through the Iterator
// interface, so each registers an error slot here and the executor checks
// every slot after the stream is drained — including slots buried under
// joins, which the previous executor silently dropped.
type execCtx struct {
	errPtrs []*error
}

func (c *execCtx) register(p *error) { c.errPtrs = append(c.errPtrs, p) }

func (c *execCtx) firstErr() error {
	for _, p := range c.errPtrs {
		if *p != nil {
			return *p
		}
	}
	return nil
}

// pipe is one planned stream flowing between operators, in one of the two
// execution modes: vectorized (batch set) or row-at-a-time (rows set).
// Exactly one field is non-nil. The executor keeps a stream batched as long
// as every operator on it has a vectorized form and converts to rows at the
// first operator that doesn't (sort, distinct, limit, post-aggregation).
type pipe struct {
	batch relation.BatchIterator
	rows  relation.Iterator
}

func (p pipe) batched() bool { return p.batch != nil }

func (p pipe) schema() *relation.Schema {
	if p.batch != nil {
		return p.batch.Schema()
	}
	return p.rows.Schema()
}

// iterator converts the stream to row-at-a-time form (a no-op when it
// already is).
func (p pipe) iterator() relation.Iterator {
	if p.batch != nil {
		return relation.NewRowsFromBatches(p.batch)
	}
	return p.rows
}

// applyFilterPipe filters the stream in its native mode: a vectorized
// predicate over batches, or the row predicate otherwise.
func applyFilterPipe(ctx *execCtx, in pipe, pred Expr) (pipe, error) {
	if in.batched() {
		b := binder{schema: in.schema()}
		evalErr := new(error)
		ctx.register(evalErr)
		f, err := b.compileBatchPredicate(pred, evalErr)
		if err != nil {
			return pipe{}, err
		}
		return pipe{batch: relation.NewBatchFilter(in.batch, f)}, nil
	}
	it, err := applyFilter(ctx, in.rows, pred)
	if err != nil {
		return pipe{}, err
	}
	return pipe{rows: it}, nil
}

// applyFilter wraps in with a predicate compiled from pred; evaluation errors
// are registered on ctx and surfaced after execution.
func applyFilter(ctx *execCtx, in relation.Iterator, pred Expr) (relation.Iterator, error) {
	b := binder{schema: in.Schema()}
	f, err := b.compile(pred)
	if err != nil {
		return nil, err
	}
	evalErr := new(error)
	ctx.register(evalErr)
	return relation.NewFilter(in, func(r relation.Row) bool {
		if *evalErr != nil {
			return false
		}
		v, err := f(r)
		if err != nil {
			*evalErr = err
			return false
		}
		if v.IsNull() {
			return false
		}
		tb, err := truthy(v)
		if err != nil {
			*evalErr = err
			return false
		}
		return tb
	}), nil
}

// planInput builds the FROM/JOIN/WHERE pipeline. With naive=true it performs
// no pushdown and no index access-path selection (the pre-planner behavior:
// full scans joined, WHERE filtered on top) — the reference implementation
// the planner is property-tested against and benchmarked as the baseline.
func planInput(cat relation.Catalog, stmt *SelectStmt, ctx *execCtx, naive bool) (pipe, *PlanNode, error) {
	sources := make([]TableRef, 0, 1+len(stmt.Joins))
	sources = append(sources, stmt.From)
	for _, j := range stmt.Joins {
		sources = append(sources, j.Table)
	}

	// Simulate the joined schema to attribute each output column to the
	// source it comes from; this mirrors relation.Concat's collision
	// renaming exactly, so pushdown resolution matches the runtime binder.
	schemas := make([]*relation.Schema, len(sources))
	for i, ref := range sources {
		s, err := cat.SchemaOf(ref.Name)
		if err != nil {
			return pipe{}, nil, err
		}
		schemas[i] = s
	}
	combined := schemas[0]
	owner := make([]int, 0, combined.Len())
	for i := 0; i < combined.Len(); i++ {
		owner = append(owner, 0)
	}
	for k := 1; k < len(sources); k++ {
		var err error
		combined, err = relation.Concat(combined, schemas[k], sources[k].Binding())
		if err != nil {
			return pipe{}, nil, err
		}
		for i := 0; i < schemas[k].Len(); i++ {
			owner = append(owner, k)
		}
	}

	// Split WHERE into conjuncts and push each single-source conjunct down
	// to its source; the rest stay above the joins.
	var conjuncts []Expr
	if stmt.Where != nil {
		conjuncts = flattenAnd(stmt.Where)
	}
	pushed := make([][]Expr, len(sources))
	var retained []Expr
	for _, c := range conjuncts {
		src := -1
		if !naive {
			src = conjunctOwner(c, combined, owner)
		}
		if src >= 0 {
			pushed[src] = append(pushed[src], c)
		} else {
			retained = append(retained, c)
		}
	}

	// Column pruning for the single-table case: a batch scan materializes
	// only the columns the statement touches.
	var needed []int
	if !naive && len(stmt.Joins) == 0 {
		needed = scanColumns(stmt, schemas[0])
	}

	it, node, est, err := planSource(cat, sources[0], pushed[0], ctx, naive, needed)
	if err != nil {
		return pipe{}, nil, err
	}

	for k, j := range stmt.Joins {
		right, rightNode, rightEst, err := planSource(cat, sources[k+1], pushed[k+1], ctx, naive, nil)
		if err != nil {
			return pipe{}, nil, err
		}
		leftCols, rightCols, residual, err := splitJoinOn(j.On, it.schema(), right.schema(), j.Table.Binding())
		if err != nil {
			return pipe{}, nil, err
		}
		// Build on the smaller estimated input; unknown (-1) loses to known.
		buildLeft := !naive && est >= 0 && (rightEst < 0 || est < rightEst)
		it, err = planJoin(it, right, leftCols, rightCols, j.Table.Binding(), buildLeft)
		if err != nil {
			return pipe{}, nil, err
		}
		node = &PlanNode{
			Op:       "HashJoin",
			Detail:   joinDetail(leftCols, rightCols, buildLeft),
			Batched:  it.batched(),
			Children: []*PlanNode{node, rightNode},
		}
		if est < 0 || rightEst < 0 {
			est = -1
		} else if rightEst > est {
			est = rightEst
		}
		if residual != nil {
			it, err = applyFilterPipe(ctx, it, residual)
			if err != nil {
				return pipe{}, nil, err
			}
			node = &PlanNode{Op: "Filter", Detail: residual.SQL(), Batched: it.batched(), Children: []*PlanNode{node}}
		}
	}

	if len(retained) > 0 {
		pred := combineAnd(retained)
		var err error
		it, err = applyFilterPipe(ctx, it, pred)
		if err != nil {
			return pipe{}, nil, err
		}
		node = &PlanNode{Op: "Filter", Detail: pred.SQL(), Batched: it.batched(), Children: []*PlanNode{node}}
	}
	return it, node, nil
}

// planJoin wires one hash join. When the probe side (the non-build side) is
// a batched stream, probing stays vectorized: the build side is drained
// into the hash table either way, so only the probe side's mode matters.
// Output columns are left-then-right in both modes.
func planJoin(left, right pipe, leftCols, rightCols []string, rightBinding string, buildLeft bool) (pipe, error) {
	probe, build := left, right
	probeCols, buildCols := leftCols, rightCols
	if buildLeft {
		probe, build = right, left
		probeCols, buildCols = rightCols, leftCols
	}
	if probe.batched() {
		probePos, err := resolveAll(probe.schema(), probeCols)
		if err != nil {
			return pipe{}, err
		}
		buildPos, err := resolveAll(build.schema(), buildCols)
		if err != nil {
			return pipe{}, err
		}
		schema, err := relation.Concat(left.schema(), right.schema(), rightBinding)
		if err != nil {
			return pipe{}, err
		}
		j, err := relation.NewBatchHashJoin(probe.batch, build.iterator(), probePos, buildPos, schema, buildLeft)
		if err != nil {
			return pipe{}, err
		}
		return pipe{batch: j}, nil
	}
	j, err := relation.NewHashJoinBuildSide(left.iterator(), right.iterator(), leftCols, rightCols, rightBinding, buildLeft)
	if err != nil {
		return pipe{}, err
	}
	return pipe{rows: j}, nil
}

func resolveAll(s *relation.Schema, cols []string) ([]int, error) {
	out := make([]int, len(cols))
	for i, c := range cols {
		p := s.Index(c)
		if p < 0 {
			return nil, fmt.Errorf("sql: join: no column %q", c)
		}
		out[i] = p
	}
	return out, nil
}

// scanColumns lists the schema positions a single-table statement touches,
// for batch-scan column pruning. nil means materialize everything: SELECT *
// (empty item list) or a reference that doesn't resolve against the table
// (ORDER BY on an output alias, or a genuinely unknown column the later
// compile will report). A statement that touches no columns at all — e.g.
// SELECT count(*) with no WHERE — returns an empty non-nil slice: the scan
// materializes nothing and only computes the visibility selection.
func scanColumns(stmt *SelectStmt, schema *relation.Schema) []int {
	if len(stmt.Items) == 0 {
		return nil
	}
	b := binder{schema: schema}
	seen := make(map[int]bool)
	out := []int{}
	bad := false
	add := func(ref *ColumnRef) {
		if bad {
			return
		}
		pos, err := b.resolve(ref)
		if err != nil {
			bad = true
			return
		}
		if !seen[pos] {
			seen[pos] = true
			out = append(out, pos)
		}
	}
	for _, item := range stmt.Items {
		walkColumnRefs(item.Expr, add)
	}
	if stmt.Where != nil {
		walkColumnRefs(stmt.Where, add)
	}
	for _, g := range stmt.GroupBy {
		walkColumnRefs(g, add)
	}
	if stmt.Having != nil {
		walkColumnRefs(stmt.Having, add)
	}
	for _, oi := range stmt.OrderBy {
		walkColumnRefs(oi.Expr, add)
	}
	if bad {
		return nil
	}
	sort.Ints(out)
	return out
}

func joinDetail(leftCols, rightCols []string, buildLeft bool) string {
	parts := make([]string, len(leftCols))
	for i := range leftCols {
		parts[i] = leftCols[i] + " = " + rightCols[i]
	}
	side := "right"
	if buildLeft {
		side = "left"
	}
	return "on (" + strings.Join(parts, ", ") + ") build=" + side
}

// conjunctOwner returns the index of the single source every column reference
// in c resolves to, or -1 when c touches several sources (or none, or an
// unknown column — those stay above the join and error there if truly bad).
func conjunctOwner(c Expr, combined *relation.Schema, owner []int) int {
	src := -1
	ok := true
	walkColumnRefs(c, func(ref *ColumnRef) {
		if !ok {
			return
		}
		pos := -1
		if ref.Table != "" {
			pos = combined.Index(ref.Table + "." + ref.Name)
		}
		if pos < 0 {
			pos = combined.Index(ref.Name)
		}
		if pos < 0 {
			ok = false
			return
		}
		if src == -1 {
			src = owner[pos]
		} else if src != owner[pos] {
			ok = false
		}
	})
	if !ok {
		return -1
	}
	return src
}

func walkColumnRefs(e Expr, fn func(*ColumnRef)) {
	switch x := e.(type) {
	case *ColumnRef:
		fn(x)
	case *BinaryExpr:
		walkColumnRefs(x.Left, fn)
		walkColumnRefs(x.Right, fn)
	case *UnaryExpr:
		walkColumnRefs(x.Expr, fn)
	case *IsNullExpr:
		walkColumnRefs(x.Expr, fn)
	case *InExpr:
		walkColumnRefs(x.Expr, fn)
		for _, a := range x.List {
			walkColumnRefs(a, fn)
		}
	case *BetweenExpr:
		walkColumnRefs(x.Expr, fn)
		walkColumnRefs(x.Lo, fn)
		walkColumnRefs(x.Hi, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkColumnRefs(a, fn)
		}
	}
}

func combineAnd(exprs []Expr) Expr {
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = &BinaryExpr{Op: "AND", Left: out, Right: e}
	}
	return out
}

// planSource plans one FROM/JOIN source given the conjuncts pushed to it.
// It returns the stream, its plan subtree, and an estimated row count
// (-1 = unknown) used to pick hash-join build sides. needed restricts which
// columns a batch scan materializes (nil = all).
func planSource(cat relation.Catalog, ref TableRef, conjs []Expr, ctx *execCtx, naive bool, needed []int) (pipe, *PlanNode, int64, error) {
	if t, ok := cat.Reader(ref.Name); ok && !naive {
		return planTableAccess(t, ref, conjs, ctx, needed)
	}
	it, err := cat.Source(ref.Name)
	if err != nil {
		return pipe{}, nil, 0, err
	}
	est := int64(-1)
	op := "Scan"
	if t, ok := cat.Reader(ref.Name); ok {
		est = int64(t.Len())
	} else {
		op = "VirtualScan"
	}
	node := &PlanNode{Op: op, Detail: sourceDetail(ref, est)}
	p := pipe{rows: it}
	if len(conjs) > 0 {
		pred := combineAnd(conjs)
		p, err = applyFilterPipe(ctx, p, pred)
		if err != nil {
			return pipe{}, nil, 0, err
		}
		node = &PlanNode{Op: "Filter", Detail: pred.SQL(), Children: []*PlanNode{node}}
	}
	return p, node, est, nil
}

func sourceDetail(ref TableRef, est int64) string {
	d := ref.Name
	if ref.Alias != "" {
		d += " AS " + ref.Alias
	}
	if est >= 0 {
		d += fmt.Sprintf(" [~%d rows]", est)
	}
	return d
}

// ---------- Access-path selection over one base table ----------

// sargable is one index-usable conjunct: col <op> literal(s).
type sargable struct {
	idx  int    // position in the conjunct list
	col  string // schema-normalized (lower-cased) column name
	op   string // "=", "in", "<", "<=", ">", ">=", "between"
	vals []relation.Value
}

// planTableAccess picks the cheapest access path the pushed conjuncts allow:
// hash-index lookup > ordered-index range > full scan. Unconsumed conjuncts
// become a residual filter over the narrowed stream. The reader may be a
// live table or a pinned snapshot; access paths resolve rows through its
// visibility filter either way. Index paths produce (small) row streams;
// the full-scan fallback produces a batched stream — scanning the whole
// table is exactly when vectorization pays.
func planTableAccess(t relation.TableReader, ref TableRef, conjs []Expr, ctx *execCtx, needed []int) (pipe, *PlanNode, int64, error) {
	binding := ref.Binding()
	schema := t.Schema()

	eqs := make(map[string]sargable)
	ranges := make(map[string][]sargable)
	for i, c := range conjs {
		s, ok := classifySargable(c, binding, schema)
		if !ok {
			continue
		}
		s.idx = i
		switch s.op {
		case "=":
			if _, dup := eqs[s.col]; !dup {
				eqs[s.col] = s
			}
			ranges[s.col] = append(ranges[s.col], s)
		case "in":
			if _, dup := eqs[s.col]; !dup {
				eqs[s.col] = s
			}
		default:
			ranges[s.col] = append(ranges[s.col], s)
		}
	}

	var (
		p        pipe
		node     *PlanNode
		est      int64
		consumed map[int]bool
	)

	if cols, keys, used := chooseHashIndex(t, eqs); cols != nil {
		it, err := relation.NewIndexLookup(t, cols, keys)
		if err != nil {
			return pipe{}, nil, 0, err
		}
		p = pipe{rows: it}
		node = &PlanNode{Op: "IndexLookup", Detail: lookupDetail(ref, cols, keys)}
		est = int64(len(keys))
		consumed = used
	} else if col, lo, hi, loIncl, hiIncl, used := chooseOrderedIndex(t, ranges); col != "" {
		it, err := relation.NewIndexRange(t, col, lo, hi, loIncl, hiIncl)
		if err != nil {
			return pipe{}, nil, 0, err
		}
		p = pipe{rows: it}
		node = &PlanNode{Op: "IndexRange", Detail: rangeDetail(ref, col, lo, hi, loIncl, hiIncl)}
		est = int64(t.Len())/4 + 1
		consumed = used
	} else {
		scan := relation.NewBatchScan(t, needed, relation.DefaultBatchSize)
		if len(conjs) > 0 {
			// Zone-map pruning for the full scan, gated on the whole pushed
			// predicate kernelizing: kernels never produce evaluation errors,
			// so skipping a page can never suppress a deferred error the
			// unpruned scan would have latched (see binder.zoneFilter).
			pred := combineAnd(conjs)
			zb := binder{schema: schema}
			if zb.kernelize(pred) != nil {
				if zf := zb.zoneFilter(pred); zf != nil {
					scan.SetZoneFilter(zf)
				}
			}
		}
		p = pipe{batch: scan}
		est = int64(t.Len())
		node = &PlanNode{Op: "Scan", Detail: sourceDetail(ref, est), Batched: true}
	}

	var residual []Expr
	for i, c := range conjs {
		if !consumed[i] {
			residual = append(residual, c)
		}
	}
	if len(residual) > 0 {
		pred := combineAnd(residual)
		var err error
		p, err = applyFilterPipe(ctx, p, pred)
		if err != nil {
			return pipe{}, nil, 0, err
		}
		node = &PlanNode{Op: "Filter", Detail: pred.SQL(), Batched: p.batched(), Children: []*PlanNode{node}}
	}
	return p, node, est, nil
}

// chooseHashIndex returns the widest hash index whose every column is bound
// by an equality (or one IN) conjunct, with the expanded key tuples and the
// set of consumed conjunct indices.
func chooseHashIndex(t relation.TableReader, eqs map[string]sargable) (cols []string, keys [][]relation.Value, consumed map[int]bool) {
	if len(eqs) == 0 {
		return nil, nil, nil
	}
	for _, ixCols := range t.HashIndexColumns() { // widest-first
		keys = [][]relation.Value{{}}
		consumed = make(map[int]bool)
		inUsed := false
		ok := true
		for _, col := range ixCols {
			s, have := eqs[strings.ToLower(col)]
			if !have {
				ok = false
				break
			}
			if s.op == "in" {
				// One IN column per plan keeps key expansion linear.
				if inUsed {
					ok = false
					break
				}
				inUsed = true
				expanded := make([][]relation.Value, 0, len(keys)*len(s.vals))
				for _, k := range keys {
					for _, v := range s.vals {
						nk := make([]relation.Value, 0, len(k)+1)
						nk = append(nk, k...)
						expanded = append(expanded, append(nk, v))
					}
				}
				keys = expanded
			} else {
				for i := range keys {
					keys[i] = append(keys[i], s.vals[0])
				}
			}
			consumed[s.idx] = true
		}
		if ok {
			return ixCols, dedupeKeys(keys), consumed
		}
	}
	return nil, nil, nil
}

func dedupeKeys(keys [][]relation.Value) [][]relation.Value {
	if len(keys) < 2 {
		return keys
	}
	seen := make(map[string]bool, len(keys))
	out := keys[:0]
	var buf []byte
	for _, k := range keys {
		buf = buf[:0]
		for _, v := range k {
			buf = v.AppendKey(buf)
			buf = append(buf, '\x1f')
		}
		if seen[string(buf)] {
			continue
		}
		seen[string(buf)] = true
		out = append(out, k)
	}
	return out
}

// chooseOrderedIndex returns the ordered-indexed column whose range conjuncts
// consume the most predicates, with the combined bounds.
func chooseOrderedIndex(t relation.TableReader, ranges map[string][]sargable) (col string, lo, hi relation.Value, loIncl, hiIncl bool, consumed map[int]bool) {
	best := -1
	for _, ixCol := range t.OrderedIndexColumns() {
		sargs := ranges[strings.ToLower(ixCol)]
		if len(sargs) <= best {
			continue
		}
		if len(sargs) == 0 {
			continue
		}
		best = len(sargs)
		col = ixCol
		lo, hi = relation.Null(), relation.Null()
		loIncl, hiIncl = true, true
		consumed = make(map[int]bool)
		for _, s := range sargs {
			switch s.op {
			case "=":
				lo, loIncl = tightenLo(lo, loIncl, s.vals[0], true)
				hi, hiIncl = tightenHi(hi, hiIncl, s.vals[0], true)
			case "between":
				lo, loIncl = tightenLo(lo, loIncl, s.vals[0], true)
				hi, hiIncl = tightenHi(hi, hiIncl, s.vals[1], true)
			case ">":
				lo, loIncl = tightenLo(lo, loIncl, s.vals[0], false)
			case ">=":
				lo, loIncl = tightenLo(lo, loIncl, s.vals[0], true)
			case "<":
				hi, hiIncl = tightenHi(hi, hiIncl, s.vals[0], false)
			case "<=":
				hi, hiIncl = tightenHi(hi, hiIncl, s.vals[0], true)
			}
			consumed[s.idx] = true
		}
	}
	return col, lo, hi, loIncl, hiIncl, consumed
}

func tightenLo(cur relation.Value, curIncl bool, v relation.Value, incl bool) (relation.Value, bool) {
	if cur.IsNull() {
		return v, incl
	}
	c := relation.Compare(v, cur)
	if c > 0 || (c == 0 && curIncl && !incl) {
		return v, incl
	}
	return cur, curIncl
}

func tightenHi(cur relation.Value, curIncl bool, v relation.Value, incl bool) (relation.Value, bool) {
	if cur.IsNull() {
		return v, incl
	}
	c := relation.Compare(v, cur)
	if c < 0 || (c == 0 && curIncl && !incl) {
		return v, incl
	}
	return cur, curIncl
}

// classifySargable recognizes the index-usable predicate shapes over the
// given table: col = lit, col <cmp> lit (either operand order), col IN
// (lits...), col BETWEEN lit AND lit. NULL literals are never sargable (SQL
// comparisons with NULL match nothing; the residual filter handles them).
func classifySargable(c Expr, binding string, schema *relation.Schema) (sargable, bool) {
	switch x := c.(type) {
	case *BinaryExpr:
		var flip = map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
		if _, cmp := flip[x.Op]; !cmp {
			return sargable{}, false
		}
		if col, ok := tableColOf(x.Left, binding, schema); ok {
			if v, ok := literalOf(x.Right); ok && !v.IsNull() {
				return sargable{col: col, op: x.Op, vals: []relation.Value{v}}, true
			}
		}
		if col, ok := tableColOf(x.Right, binding, schema); ok {
			if v, ok := literalOf(x.Left); ok && !v.IsNull() {
				return sargable{col: col, op: flip[x.Op], vals: []relation.Value{v}}, true
			}
		}
	case *InExpr:
		if x.Negate {
			return sargable{}, false
		}
		col, ok := tableColOf(x.Expr, binding, schema)
		if !ok {
			return sargable{}, false
		}
		vals := make([]relation.Value, 0, len(x.List))
		for _, e := range x.List {
			v, ok := literalOf(e)
			if !ok || v.IsNull() {
				return sargable{}, false
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return sargable{}, false
		}
		return sargable{col: col, op: "in", vals: vals}, true
	case *BetweenExpr:
		if x.Negate {
			return sargable{}, false
		}
		col, ok := tableColOf(x.Expr, binding, schema)
		if !ok {
			return sargable{}, false
		}
		lo, lok := literalOf(x.Lo)
		hi, hok := literalOf(x.Hi)
		if !lok || !hok || lo.IsNull() || hi.IsNull() {
			return sargable{}, false
		}
		return sargable{col: col, op: "between", vals: []relation.Value{lo, hi}}, true
	}
	return sargable{}, false
}

// tableColOf resolves e as a reference to a column of the table bound as
// binding, returning the schema-normalized column name.
func tableColOf(e Expr, binding string, schema *relation.Schema) (string, bool) {
	ref, ok := e.(*ColumnRef)
	if !ok {
		return "", false
	}
	if ref.Table != "" && !strings.EqualFold(ref.Table, binding) {
		return "", false
	}
	i := schema.Index(ref.Name)
	if i < 0 {
		return "", false
	}
	return strings.ToLower(schema.Col(i).Name), true
}

// literalOf extracts a constant from a Literal or a negated numeric Literal.
func literalOf(e Expr) (relation.Value, bool) {
	switch x := e.(type) {
	case *Literal:
		return x.Value, true
	case *UnaryExpr:
		if x.Op != "-" {
			return relation.Null(), false
		}
		inner, ok := x.Expr.(*Literal)
		if !ok {
			return relation.Null(), false
		}
		switch inner.Value.Type() {
		case relation.TInt:
			return relation.Int(-inner.Value.AsInt()), true
		case relation.TFloat:
			return relation.Float(-inner.Value.AsFloat()), true
		}
	}
	return relation.Null(), false
}

// ---------- EXPLAIN rendering details ----------

func valueSQL(v relation.Value) string { return (&Literal{Value: v}).SQL() }

func lookupDetail(ref TableRef, cols []string, keys [][]relation.Value) string {
	d := ref.Name
	if ref.Alias != "" {
		d += " AS " + ref.Alias
	}
	d += " via hash(" + strings.Join(cols, ", ") + ")"
	tuples := make([]string, len(keys))
	for i, k := range keys {
		parts := make([]string, len(k))
		for j, v := range k {
			parts[j] = valueSQL(v)
		}
		tuples[i] = "(" + strings.Join(parts, ", ") + ")"
	}
	if len(tuples) == 1 {
		return d + " = " + tuples[0]
	}
	return d + " IN (" + strings.Join(tuples, ", ") + ")"
}

func rangeDetail(ref TableRef, col string, lo, hi relation.Value, loIncl, hiIncl bool) string {
	d := ref.Name
	if ref.Alias != "" {
		d += " AS " + ref.Alias
	}
	d += " via ordered(" + col + ")"
	var parts []string
	if !lo.IsNull() {
		op := ">"
		if loIncl {
			op = ">="
		}
		parts = append(parts, col+" "+op+" "+valueSQL(lo))
	}
	if !hi.IsNull() {
		op := "<"
		if hiIncl {
			op = "<="
		}
		parts = append(parts, col+" "+op+" "+valueSQL(hi))
	}
	if len(parts) == 0 {
		return d
	}
	return d + ": " + strings.Join(parts, " AND ")
}
