package sqlparse

import (
	"strings"
	"time"

	"flordb/internal/relation"
)

// Expr is a scalar or boolean expression node.
type Expr interface {
	// SQL renders the expression back to SQL-ish text (for column naming
	// and error messages).
	SQL() string
}

// ColumnRef names a column, optionally qualified ("t.col").
type ColumnRef struct {
	Table string
	Name  string
}

// SQL implements Expr.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Literal is a constant value.
type Literal struct {
	Value relation.Value
}

// SQL implements Expr.
func (l *Literal) SQL() string {
	if l.Value.Type() == relation.TText {
		return "'" + strings.ReplaceAll(l.Value.AsText(), "'", "''") + "'"
	}
	return l.Value.String()
}

// Star is the "*" in SELECT * or COUNT(*).
type Star struct{}

// SQL implements Expr.
func (s *Star) SQL() string { return "*" }

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Op    string // =, !=, <, <=, >, >=, AND, OR, LIKE, +, -, *, /, %
	Left  Expr
	Right Expr
}

// SQL implements Expr.
func (b *BinaryExpr) SQL() string {
	return "(" + b.Left.SQL() + " " + b.Op + " " + b.Right.SQL() + ")"
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op   string // NOT, -
	Expr Expr
}

// SQL implements Expr.
func (u *UnaryExpr) SQL() string { return u.Op + " " + u.Expr.SQL() }

// IsNullExpr tests for NULL-ness.
type IsNullExpr struct {
	Expr   Expr
	Negate bool
}

// SQL implements Expr.
func (e *IsNullExpr) SQL() string {
	if e.Negate {
		return e.Expr.SQL() + " IS NOT NULL"
	}
	return e.Expr.SQL() + " IS NULL"
}

// InExpr tests membership in a literal list.
type InExpr struct {
	Expr   Expr
	List   []Expr
	Negate bool
}

// SQL implements Expr.
func (e *InExpr) SQL() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.SQL()
	}
	op := " IN ("
	if e.Negate {
		op = " NOT IN ("
	}
	return e.Expr.SQL() + op + strings.Join(parts, ", ") + ")"
}

// BetweenExpr tests lo <= expr <= hi.
type BetweenExpr struct {
	Expr   Expr
	Lo, Hi Expr
	Negate bool
}

// SQL implements Expr.
func (e *BetweenExpr) SQL() string {
	op := " BETWEEN "
	if e.Negate {
		op = " NOT BETWEEN "
	}
	return e.Expr.SQL() + op + e.Lo.SQL() + " AND " + e.Hi.SQL()
}

// FuncCall is an aggregate or scalar function call.
type FuncCall struct {
	Name string // lower-cased
	Args []Expr // a single Star for COUNT(*)
}

// SQL implements Expr.
func (f *FuncCall) SQL() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.SQL()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// IsAggregate reports whether the call is one of the supported aggregates.
func (f *FuncCall) IsAggregate() bool {
	switch f.Name {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

// SelectItem is one output column of a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // optional
}

// OutputName returns the column name the item produces.
func (s SelectItem) OutputName() string {
	if s.Alias != "" {
		return s.Alias
	}
	if c, ok := s.Expr.(*ColumnRef); ok {
		return c.Name
	}
	return s.Expr.SQL()
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the table is referred to by in expressions.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one INNER JOIN ... ON a = b [AND c = d ...].
type JoinClause struct {
	Table TableRef
	On    Expr // conjunction of equality predicates
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is the root of a parsed query.
type SelectStmt struct {
	// Explain marks an EXPLAIN SELECT: the statement is planned but not
	// executed, and the result is the rendered plan (one text row per line).
	Explain  bool
	Distinct bool
	Items    []SelectItem // empty means SELECT *
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	Offset   int64
	// AsOf pins the whole statement (all scanned tables) at a historical
	// epoch; nil means current visibility.
	AsOf *AsOfClause
}

// AsOfClause is the time-travel clause at the end of a SELECT:
// `AS OF <epoch>` names an MVCC commit epoch directly; `AS OF TIMESTAMP
// '<ts>'` names a commit wall-clock time, which the session resolves to the
// greatest epoch committed at or before it (via the persisted
// epoch↔timestamp map) before execution.
type AsOfClause struct {
	Epoch  int64
	Time   time.Time
	ByTime bool
}

// HasAggregates reports whether any select item or HAVING clause contains an
// aggregate function call.
func (s *SelectStmt) HasAggregates() bool {
	for _, it := range s.Items {
		if containsAggregate(it.Expr) {
			return true
		}
	}
	return s.Having != nil && containsAggregate(s.Having)
}

func containsAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		if x.IsAggregate() {
			return true
		}
		for _, a := range x.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return containsAggregate(x.Left) || containsAggregate(x.Right)
	case *UnaryExpr:
		return containsAggregate(x.Expr)
	case *IsNullExpr:
		return containsAggregate(x.Expr)
	case *InExpr:
		if containsAggregate(x.Expr) {
			return true
		}
		for _, a := range x.List {
			if containsAggregate(a) {
				return true
			}
		}
	case *BetweenExpr:
		return containsAggregate(x.Expr) || containsAggregate(x.Lo) || containsAggregate(x.Hi)
	}
	return false
}
