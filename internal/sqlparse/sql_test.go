package sqlparse

import (
	"strings"
	"testing"

	"flordb/internal/relation"
)

func testDB(t *testing.T) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	logs, err := db.CreateTable("logs", relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText},
		relation.Column{Name: "tstamp", Type: relation.TInt},
		relation.Column{Name: "filename", Type: relation.TText},
		relation.Column{Name: "value_name", Type: relation.TText},
		relation.Column{Name: "value", Type: relation.TText},
	))
	if err != nil {
		t.Fatal(err)
	}
	rows := []relation.Row{
		{relation.Text("pdf"), relation.Int(1), relation.Text("train.py"), relation.Text("acc"), relation.Text("0.80")},
		{relation.Text("pdf"), relation.Int(1), relation.Text("train.py"), relation.Text("recall"), relation.Text("0.70")},
		{relation.Text("pdf"), relation.Int(2), relation.Text("train.py"), relation.Text("acc"), relation.Text("0.85")},
		{relation.Text("pdf"), relation.Int(2), relation.Text("train.py"), relation.Text("recall"), relation.Text("0.75")},
		{relation.Text("pdf"), relation.Int(3), relation.Text("train.py"), relation.Text("acc"), relation.Text("0.90")},
		{relation.Text("pdf"), relation.Int(3), relation.Text("infer.py"), relation.Text("pred"), relation.Text("cat")},
		{relation.Text("other"), relation.Int(1), relation.Text("x.py"), relation.Text("acc"), relation.Text("0.10")},
	}
	if err := logs.InsertMany(rows); err != nil {
		t.Fatal(err)
	}
	runs, err := db.CreateTable("runs", relation.MustSchema(
		relation.Column{Name: "tstamp", Type: relation.TInt},
		relation.Column{Name: "vid", Type: relation.TText},
	))
	if err != nil {
		t.Fatal(err)
	}
	runs.InsertMany([]relation.Row{
		{relation.Int(1), relation.Text("v1")},
		{relation.Int(2), relation.Text("v2")},
		{relation.Int(3), relation.Text("v3")},
	})
	return db
}

func mustRun(t *testing.T, db *relation.Database, q string) *Result {
	t.Helper()
	res, err := Run(db, q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s' FROM t WHERE x >= 1.5e2 -- comment\n")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if toks[0].Text != "SELECT" || toks[0].Kind != TokKeyword {
		t.Fatalf("first token: %+v", toks[0])
	}
	if toks[3].Kind != TokString || toks[3].Text != "it's" {
		t.Fatalf("string token: %+v", toks[3])
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Fatalf("missing EOF: %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("'unterminated"); err == nil {
		t.Fatal("unterminated string must fail")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Fatal("bad char must fail")
	}
	if _, err := Lex(`"unterminated`); err == nil {
		t.Fatal("unterminated quoted ident must fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t trailing garbage here (",
		"SELECT a b c FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("expected parse error for %q", q)
		}
	}
}

func TestSelectStar(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT * FROM logs")
	if len(res.Rows) != 7 || len(res.Columns) != 5 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
}

func TestWhereEquality(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT value FROM logs WHERE value_name = 'acc' AND projid = 'pdf'")
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
}

func TestWhereComparisonAndArithmetic(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT tstamp FROM logs WHERE tstamp + 1 > 2 AND tstamp * 2 <= 6")
	for _, r := range res.Rows {
		v := r[0].AsInt()
		if v < 2 || v > 3 {
			t.Fatalf("filter wrong: %v", v)
		}
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
}

func TestOrderByDescLimitOffset(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT tstamp, value_name FROM logs WHERE projid='pdf' ORDER BY tstamp DESC, value_name ASC LIMIT 2 OFFSET 1")
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 3 || res.Rows[0][1].AsText() != "pred" {
		t.Fatalf("unexpected first row %v", res.Rows[0])
	}
}

func TestOrderByExpressionNotSelected(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT value_name FROM logs WHERE projid='pdf' ORDER BY tstamp * -1, value_name")
	if len(res.Columns) != 1 {
		t.Fatalf("hidden sort column leaked: %v", res.Columns)
	}
	if res.Rows[0][0].AsText() != "acc" {
		t.Fatalf("first row: %v", res.Rows[0])
	}
	// tstamp 3 first because multiplied by -1.
	last := res.Rows[len(res.Rows)-1][0].AsText()
	if last != "acc" && last != "recall" {
		t.Fatalf("last row: %v", last)
	}
}

func TestAggregatesGlobal(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT count(*) AS n, min(tstamp) AS mn, max(tstamp) AS mx FROM logs WHERE projid = 'pdf'")
	if len(res.Rows) != 1 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].AsInt() != 6 || r[1].AsInt() != 1 || r[2].AsInt() != 3 {
		t.Fatalf("agg row: %v", r)
	}
}

func TestGroupByWithHaving(t *testing.T) {
	res := mustRun(t, testDB(t), `
		SELECT value_name, count(*) AS n
		FROM logs WHERE projid = 'pdf'
		GROUP BY value_name
		HAVING count(*) >= 2
		ORDER BY n DESC, value_name`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Rows[0][0].AsText() != "acc" || res.Rows[0][1].AsInt() != 3 {
		t.Fatalf("first group: %v", res.Rows[0])
	}
	if res.Rows[1][0].AsText() != "recall" || res.Rows[1][1].AsInt() != 2 {
		t.Fatalf("second group: %v", res.Rows[1])
	}
}

func TestGroupByExpression(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT tstamp % 2 AS parity, count(*) AS n FROM logs GROUP BY tstamp % 2 ORDER BY parity")
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Rows[0][0].AsInt() != 0 || res.Rows[0][1].AsInt() != 2 {
		t.Fatalf("parity 0: %v", res.Rows[0])
	}
	if res.Rows[1][0].AsInt() != 1 || res.Rows[1][1].AsInt() != 5 {
		t.Fatalf("parity 1: %v", res.Rows[1])
	}
}

func TestAggregateOverTextCoercion(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT max(cast_float(value)) AS best FROM logs WHERE value_name = 'acc'")
	if res.Rows[0][0].AsFloat() != 0.90 {
		t.Fatalf("best acc: %v", res.Rows[0])
	}
}

func TestJoin(t *testing.T) {
	res := mustRun(t, testDB(t), `
		SELECT l.value_name, r.vid
		FROM logs l JOIN runs r ON l.tstamp = r.tstamp
		WHERE l.projid = 'pdf' AND l.value_name = 'acc'
		ORDER BY r.vid`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Rows[0][1].AsText() != "v1" || res.Rows[2][1].AsText() != "v3" {
		t.Fatalf("join vids: %v", res.Rows)
	}
}

func TestJoinRequiresEquality(t *testing.T) {
	if _, err := Run(testDB(t), "SELECT * FROM logs l JOIN runs r ON l.tstamp > r.tstamp"); err == nil {
		t.Fatal("non-equi join must fail")
	}
}

func TestJoinWithResidualPredicate(t *testing.T) {
	res := mustRun(t, testDB(t), `
		SELECT value_name FROM logs l JOIN runs r ON l.tstamp = r.tstamp AND l.projid = 'pdf'
		ORDER BY value_name`)
	if len(res.Rows) != 6 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
}

func TestLike(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT DISTINCT filename FROM logs WHERE filename LIKE '%.py' ORDER BY filename")
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%v", res.Rows)
	}
	res = mustRun(t, testDB(t), "SELECT count(*) AS n FROM logs WHERE filename LIKE 'train._y'")
	if res.Rows[0][0].AsInt() != 5 {
		t.Fatalf("LIKE underscore: %v", res.Rows[0])
	}
}

func TestInAndBetween(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT count(*) AS n FROM logs WHERE tstamp IN (1, 3)")
	if res.Rows[0][0].AsInt() != 5 {
		t.Fatalf("IN: %v", res.Rows[0])
	}
	res = mustRun(t, testDB(t), "SELECT count(*) AS n FROM logs WHERE tstamp NOT IN (1, 3)")
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("NOT IN: %v", res.Rows[0])
	}
	res = mustRun(t, testDB(t), "SELECT count(*) AS n FROM logs WHERE tstamp BETWEEN 2 AND 3")
	if res.Rows[0][0].AsInt() != 4 {
		t.Fatalf("BETWEEN: %v", res.Rows[0])
	}
}

func TestIsNull(t *testing.T) {
	db := testDB(t)
	tbl, _ := db.Table("logs")
	tbl.Insert(relation.Row{relation.Text("pdf"), relation.Int(4), relation.Text("z.py"), relation.Text("x"), relation.Null()})
	res := mustRun(t, db, "SELECT count(*) AS n FROM logs WHERE value IS NULL")
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("IS NULL: %v", res.Rows[0])
	}
	res = mustRun(t, db, "SELECT count(*) AS n FROM logs WHERE value IS NOT NULL")
	if res.Rows[0][0].AsInt() != 7 {
		t.Fatalf("IS NOT NULL: %v", res.Rows[0])
	}
}

func TestNullComparisonNeverMatches(t *testing.T) {
	db := testDB(t)
	tbl, _ := db.Table("logs")
	tbl.Insert(relation.Row{relation.Text("pdf"), relation.Int(4), relation.Text("z.py"), relation.Text("x"), relation.Null()})
	res := mustRun(t, db, "SELECT count(*) AS n FROM logs WHERE value = value")
	// The NULL-valued row must not match value = value.
	if res.Rows[0][0].AsInt() != 7 {
		t.Fatalf("NULL equality: %v", res.Rows[0])
	}
}

func TestScalarFunctions(t *testing.T) {
	db := testDB(t)
	res := mustRun(t, db, "SELECT upper(filename) AS f FROM logs WHERE value_name = 'pred'")
	if res.Rows[0][0].AsText() != "INFER.PY" {
		t.Fatalf("upper: %v", res.Rows[0])
	}
	res = mustRun(t, db, "SELECT length(filename) AS l FROM logs LIMIT 1")
	if res.Rows[0][0].AsInt() != 8 {
		t.Fatalf("length: %v", res.Rows[0])
	}
	res = mustRun(t, db, "SELECT coalesce(NULL, 'x') AS c FROM logs LIMIT 1")
	if res.Rows[0][0].AsText() != "x" {
		t.Fatalf("coalesce: %v", res.Rows[0])
	}
	res = mustRun(t, db, "SELECT abs(-3) AS a FROM logs LIMIT 1")
	if res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("abs: %v", res.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT DISTINCT projid FROM logs ORDER BY projid")
	if len(res.Rows) != 2 || res.Rows[0][0].AsText() != "other" {
		t.Fatalf("distinct: %v", res.Rows)
	}
}

func TestUnknownColumnAndTable(t *testing.T) {
	db := testDB(t)
	if _, err := Run(db, "SELECT nope FROM logs"); err == nil || !strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("unknown column: %v", err)
	}
	if _, err := Run(db, "SELECT * FROM nope"); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestDivisionByZeroSurfaces(t *testing.T) {
	if _, err := Run(testDB(t), "SELECT * FROM logs WHERE 1 / 0 = 1"); err == nil {
		t.Fatal("division by zero must surface")
	}
}

func TestNotAndParens(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT count(*) AS n FROM logs WHERE NOT (projid = 'other' OR tstamp = 3)")
	if res.Rows[0][0].AsInt() != 4 {
		t.Fatalf("NOT/parens: %v", res.Rows[0])
	}
}

func TestStringConcatPlus(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT projid + ':' + filename AS tag FROM logs LIMIT 1")
	if res.Rows[0][0].AsText() != "pdf:train.py" {
		t.Fatalf("concat: %v", res.Rows[0])
	}
}

func TestVirtualTableQuery(t *testing.T) {
	db := testDB(t)
	vt := &relation.FuncVirtualTable{
		TableName: "git",
		TableSchema: relation.MustSchema(
			relation.Column{Name: "vid", Type: relation.TText},
			relation.Column{Name: "filename", Type: relation.TText},
		),
		RowsFn: func() []relation.Row {
			return []relation.Row{
				{relation.Text("v1"), relation.Text("train.py")},
				{relation.Text("v2"), relation.Text("train.py")},
			}
		},
	}
	if err := db.RegisterVirtual(vt); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, db, "SELECT count(*) AS n FROM git WHERE filename = 'train.py'")
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("virtual query: %v", res.Rows[0])
	}
}

func TestAvgSum(t *testing.T) {
	res := mustRun(t, testDB(t), "SELECT avg(tstamp) AS a, sum(tstamp) AS s FROM logs WHERE projid = 'pdf'")
	if res.Rows[0][1].AsFloat() != 12 {
		t.Fatalf("sum: %v", res.Rows[0])
	}
	if res.Rows[0][0].AsFloat() != 2.0 {
		t.Fatalf("avg: %v", res.Rows[0])
	}
}

func TestParseRoundTripSQLRendering(t *testing.T) {
	stmt, err := Parse("SELECT a, count(*) AS n FROM t WHERE x = 'v' AND y > 2 GROUP BY a ORDER BY n DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.HasAggregates() {
		t.Fatal("aggregate not detected")
	}
	if stmt.Limit != 5 || len(stmt.GroupBy) != 1 || len(stmt.OrderBy) != 1 {
		t.Fatalf("stmt: %+v", stmt)
	}
	if stmt.Where.SQL() != "((x = 'v') AND (y > 2))" {
		t.Fatalf("where SQL: %s", stmt.Where.SQL())
	}
}
