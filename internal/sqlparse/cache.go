package sqlparse

import "sync"

// PlanCache is a bounded LRU cache of parsed statements keyed by query text.
// Serving workloads issue the same dashboard and feedback-UI queries over and
// over against fresh snapshots; caching the parse (lex + parse + AST build)
// removes it from the per-request path. Cached statements are immutable —
// Execute never mutates a *SelectStmt — so one entry may be executed by many
// goroutines concurrently, each against its own snapshot.
//
// Access paths are deliberately NOT cached: they bind to a specific table
// state (index choice depends on live statistics, and iterators pin rows),
// so planning re-runs per execution against the caller's catalog. Planning
// is a few map lookups per table; parsing dominates.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*cacheEntry
	head  *cacheEntry // most recently used
	tail  *cacheEntry // least recently used

	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key        string
	stmt       *SelectStmt
	prev, next *cacheEntry
}

// DefaultPlanCacheSize bounds a session's plan cache when the caller does not
// choose a size.
const DefaultPlanCacheSize = 256

// NewPlanCache creates a cache holding at most capacity parsed statements
// (capacity <= 0 applies DefaultPlanCacheSize).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{cap: capacity, items: make(map[string]*cacheEntry, capacity)}
}

// Parse returns the parsed statement for the query text, consulting the
// cache first. Parse errors are not cached (they are cheap to reproduce and
// callers rarely retry identical garbage) and do not count as misses — the
// miss counter measures cache effectiveness on parseable queries, not input
// quality. AS OF statements are parsed but never inserted: their epoch (or
// timestamp) literal makes the raw text near-unique per request, and caching
// them would evict the hot dashboard queries the cache exists for.
func (c *PlanCache) Parse(query string) (*SelectStmt, error) {
	c.mu.Lock()
	if e, ok := c.items[query]; ok {
		c.moveToFront(e)
		c.hits++
		stmt := e.stmt
		c.mu.Unlock()
		return stmt, nil
	}
	c.mu.Unlock()

	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if stmt.AsOf != nil {
		// Time-travel statements bypass the cache entirely: no insert, no
		// stats. The parse is the price of the unique literal.
		return stmt, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[query]; ok { // raced with another parser; keep theirs
		c.moveToFront(e)
		c.hits++
		return e.stmt, nil
	}
	c.misses++
	e := &cacheEntry{key: query, stmt: stmt}
	c.items[query] = e
	c.pushFront(e)
	if len(c.items) > c.cap {
		c.evictTail()
	}
	return stmt, nil
}

// Stats reports cache hits and misses since creation.
func (c *PlanCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached statements.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *PlanCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *PlanCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	c.pushFront(e)
}

func (c *PlanCache) evictTail() {
	e := c.tail
	if e == nil {
		return
	}
	if e.prev != nil {
		e.prev.next = nil
	}
	c.tail = e.prev
	if c.head == e {
		c.head = nil
	}
	delete(c.items, e.key)
}
