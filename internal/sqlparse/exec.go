package sqlparse

import (
	"fmt"
	"strings"

	"flordb/internal/relation"
)

// Result is a fully materialized query result.
type Result struct {
	Columns []string
	Rows    []relation.Row
}

// Run parses and executes a SQL query against a catalog — the live database
// (latest visibility) or a pinned snapshot (one-epoch visibility).
func Run(cat relation.Catalog, query string) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Execute(cat, stmt)
}

// ExecOptions tunes statement execution.
type ExecOptions struct {
	// ScanWorkers caps the morsel-driven parallel scan worker pool. 0 means
	// GOMAXPROCS; 1 forces serial execution. The effective pool is
	// min(GOMAXPROCS, ScanWorkers), and never more than one worker per
	// morsel (see tryParallel).
	ScanWorkers int
}

// Execute runs a parsed statement against a catalog using the query planner
// (index-backed access paths, predicate pushdown below joins, morsel-driven
// parallel full scans). An EXPLAIN statement returns the rendered plan
// instead of rows. The statement is not mutated, so a cached parse may be
// executed concurrently.
func Execute(cat relation.Catalog, stmt *SelectStmt) (*Result, error) {
	return ExecuteOptions(cat, stmt, ExecOptions{})
}

// ExecuteOptions is Execute with execution tuning.
func ExecuteOptions(cat relation.Catalog, stmt *SelectStmt, opts ExecOptions) (*Result, error) {
	return execute(cat, stmt, false, opts)
}

// ExecuteScan runs a parsed statement with the planner disabled: every table
// is fully scanned serially and the WHERE clause filters the joined stream
// post hoc. It is the reference implementation the planner is
// property-tested against and the baseline the C8–C10 benchmarks measure.
func ExecuteScan(cat relation.Catalog, stmt *SelectStmt) (*Result, error) {
	return execute(cat, stmt, true, ExecOptions{ScanWorkers: 1})
}

func execute(cat relation.Catalog, stmt *SelectStmt, naive bool, opts ExecOptions) (*Result, error) {
	if stmt.AsOf != nil {
		if stmt.AsOf.ByTime {
			// Timestamp resolution needs the session's epoch↔timestamp map;
			// flor.Session rewrites ByTime clauses into epoch form before
			// executing. Reaching here means the statement bypassed it.
			return nil, fmt.Errorf("sql: AS OF TIMESTAMP requires a session to resolve the timestamp to an epoch")
		}
		tt, ok := cat.(relation.TimeTraveler)
		if !ok {
			return nil, fmt.Errorf("sql: this catalog does not support AS OF")
		}
		pinned, release, err := tt.AsOf(stmt.AsOf.Epoch)
		if err != nil {
			return nil, err
		}
		defer release()
		cat = pinned
	}
	ctx := &execCtx{}
	var c *compiled
	if !naive {
		// Morsel-driven parallel full scan, when the statement qualifies; on
		// any disqualification or compile error the serial path below runs
		// and surfaces the identical error.
		if pc, pctx := tryParallel(cat, stmt, opts); pc != nil {
			c, ctx = pc, pctx
		}
	}
	if c == nil {
		in, inNode, err := planInput(cat, stmt, ctx, naive)
		if err != nil {
			return nil, err
		}
		if stmt.HasAggregates() || len(stmt.GroupBy) > 0 {
			c, err = compileAggregate(in, inNode, stmt, ctx)
		} else {
			if stmt.Having != nil {
				return nil, fmt.Errorf("sql: HAVING requires GROUP BY or aggregates")
			}
			c, err = compileSimple(in, inNode, stmt, ctx)
		}
		if err != nil {
			return nil, err
		}
	}

	if stmt.Explain {
		lines := c.plan.Lines()
		rows := make([]relation.Row, len(lines))
		for i, l := range lines {
			rows[i] = relation.Row{relation.Text(l)}
		}
		return &Result{Columns: []string{"plan"}, Rows: rows}, nil
	}

	rows := relation.Collect(c.it)
	if err := ctx.firstErr(); err != nil {
		return nil, err
	}
	if c.hidden > 0 {
		for i, r := range rows {
			rows[i] = r[:len(c.columns)]
		}
	}
	return &Result{Columns: c.columns, Rows: rows}, nil
}

// compiled is a fully planned statement: the operator pipeline, the plan tree
// describing it, and the output shape.
type compiled struct {
	it      relation.Iterator
	plan    *PlanNode
	columns []string // visible output columns
	hidden  int      // trailing hidden sort columns to strip
}

// splitJoinOn decomposes an ON clause that is a conjunction of equality
// predicates between a left column and a right column. Predicates that
// aren't cross-side equalities become a residual filter applied after the
// hash join.
func splitJoinOn(on Expr, left, right *relation.Schema, rightBinding string) (leftCols, rightCols []string, residual Expr, err error) {
	conjuncts := flattenAnd(on)
	for _, c := range conjuncts {
		be, ok := c.(*BinaryExpr)
		if ok && be.Op == "=" {
			lref, lok := be.Left.(*ColumnRef)
			rref, rok := be.Right.(*ColumnRef)
			if lok && rok {
				lcol, lSide := resolveSide(lref, left, right, rightBinding)
				rcol, rSide := resolveSide(rref, left, right, rightBinding)
				if lSide == 'L' && rSide == 'R' {
					leftCols = append(leftCols, lcol)
					rightCols = append(rightCols, rcol)
					continue
				}
				if lSide == 'R' && rSide == 'L' {
					leftCols = append(leftCols, rcol)
					rightCols = append(rightCols, lcol)
					continue
				}
			}
		}
		if residual == nil {
			residual = c
		} else {
			residual = &BinaryExpr{Op: "AND", Left: residual, Right: c}
		}
	}
	if len(leftCols) == 0 {
		return nil, nil, nil, fmt.Errorf("sql: JOIN ... ON must contain at least one cross-table equality")
	}
	return leftCols, rightCols, residual, nil
}

func resolveSide(c *ColumnRef, left, right *relation.Schema, rightBinding string) (string, byte) {
	if c.Table != "" && strings.EqualFold(c.Table, rightBinding) {
		if right.Index(c.Name) >= 0 {
			return c.Name, 'R'
		}
	}
	if left.Index(c.Name) >= 0 {
		return c.Name, 'L'
	}
	if c.Table != "" && left.Index(c.Table+"."+c.Name) >= 0 {
		return c.Table + "." + c.Name, 'L'
	}
	if right.Index(c.Name) >= 0 {
		return c.Name, 'R'
	}
	return c.Name, '?'
}

func flattenAnd(e Expr) []Expr {
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		return append(flattenAnd(be.Left), flattenAnd(be.Right)...)
	}
	return []Expr{e}
}

// compileProjExpr compiles one output expression into the shared projection
// form both execution modes consume: a plain column reference becomes a
// pass-through (the batch path aliases the column, zero work per row);
// anything else compiles to a row closure plus the set of input columns it
// reads. captureErr=false mirrors the hidden-sort-column behavior, where
// evaluation errors are dropped rather than surfaced.
func compileProjExpr(b binder, ctx *execCtx, e Expr, name string, captureErr bool) (relation.BatchProjExpr, error) {
	if cr, ok := e.(*ColumnRef); ok {
		if i, err := b.resolve(cr); err == nil {
			return relation.PassThrough(name, b.schema.Col(i).Type, i), nil
		}
	}
	f, err := b.compile(e)
	if err != nil {
		return relation.BatchProjExpr{}, err
	}
	out := relation.BatchProjExpr{Name: name, Type: inferType(e, b.schema), NeedCols: b.referencedCols(e)}
	if captureErr {
		capturedErr := new(error)
		ctx.register(capturedErr)
		out.Eval = func(r relation.Row) relation.Value {
			v, err := f(r)
			if err != nil && *capturedErr == nil {
				*capturedErr = err
			}
			return v
		}
	} else {
		out.Eval = func(r relation.Row) relation.Value {
			v, _ := f(r)
			return v
		}
	}
	return out, nil
}

// project applies the compiled projection to the stream in its native mode
// and returns the (row-at-a-time) downstream iterator: projection is the
// last vectorized operator of a simple pipeline, so its output converts to
// rows for sort/distinct/limit/materialization.
func project(in pipe, exprs []relation.BatchProjExpr) (relation.Iterator, error) {
	if in.batched() {
		bp, err := relation.NewBatchProject(in.batch, exprs)
		if err != nil {
			return nil, err
		}
		return relation.NewRowsFromBatches(bp), nil
	}
	return relation.NewProject(in.rows, relation.RowProjExprs(exprs))
}

// projItem is one projection output awaiting compilation: the expression,
// its output name, and whether evaluation errors surface (hidden sort
// columns drop them).
type projItem struct {
	expr       Expr
	name       string
	captureErr bool
}

// simplePlan is the AST-level shape of a non-aggregate statement — output
// items, hidden sort columns, sort keys — computed once per statement. The
// serial path compiles it into one pipeline; the parallel path compiles it
// once per worker (compiled closures hold per-pipeline scratch state, so
// they cannot be shared across goroutines).
type simplePlan struct {
	items       []projItem
	visible     []string
	sortKeys    []relation.SortKey
	sortDisplay []string
	nHidden     int
}

// buildSimplePlan computes the projection/sort shape of a non-aggregate
// statement against the input schema.
func buildSimplePlan(stmt *SelectStmt, schema *relation.Schema) (*simplePlan, error) {
	sp := &simplePlan{}
	if len(stmt.Items) == 0 { // SELECT *
		for i := 0; i < schema.Len(); i++ {
			name := schema.Col(i).Name
			// A bare ColumnRef compiles to a pass-through of the resolved
			// position; schema column names are unique, so this is the column
			// itself.
			sp.items = append(sp.items, projItem{expr: &ColumnRef{Name: name}, name: name, captureErr: true})
			sp.visible = append(sp.visible, name)
		}
	} else {
		for _, item := range stmt.Items {
			sp.items = append(sp.items, projItem{expr: item.Expr, name: item.OutputName(), captureErr: true})
			sp.visible = append(sp.visible, item.OutputName())
		}
	}

	// Hidden sort columns: ORDER BY expressions not present among visible names.
	outNames := map[string]bool{}
	for _, v := range sp.visible {
		outNames[strings.ToLower(v)] = true
	}
	for i, oi := range stmt.OrderBy {
		if cr, ok := oi.Expr.(*ColumnRef); ok && cr.Table == "" && outNames[strings.ToLower(cr.Name)] {
			sp.sortKeys = append(sp.sortKeys, relation.SortKey{Col: cr.Name, Desc: oi.Desc})
			sp.sortDisplay = append(sp.sortDisplay, orderItemSQL(oi))
			continue
		}
		name := fmt.Sprintf("__sort%d", i)
		sp.items = append(sp.items, projItem{expr: oi.Expr, name: name})
		sp.nHidden++
		sp.sortKeys = append(sp.sortKeys, relation.SortKey{Col: name, Desc: oi.Desc})
		sp.sortDisplay = append(sp.sortDisplay, orderItemSQL(oi))
	}
	if stmt.Distinct && sp.nHidden > 0 {
		return nil, fmt.Errorf("sql: ORDER BY with DISTINCT must reference selected columns")
	}
	return sp, nil
}

// compileSimpleExprs compiles the plan's projection items against one
// pipeline's binder, registering error slots on ctx.
func compileSimpleExprs(b binder, ctx *execCtx, sp *simplePlan) ([]relation.BatchProjExpr, error) {
	exprs := make([]relation.BatchProjExpr, 0, len(sp.items))
	for _, it := range sp.items {
		e, err := compileProjExpr(b, ctx, it.expr, it.name, it.captureErr)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
	}
	return exprs, nil
}

// finishSimple stacks the post-projection operators (DISTINCT, ORDER BY,
// LIMIT) on an already-projected row stream. Shared by the serial and
// parallel paths: relation.NewSort is stable, so sorting a parallel result
// reassembled in morsel (= row store) order yields exactly the serial output.
func finishSimple(it relation.Iterator, node *PlanNode, stmt *SelectStmt, sp *simplePlan) (*compiled, error) {
	if stmt.Distinct {
		it = relation.NewDistinct(it)
		node = &PlanNode{Op: "Distinct", Children: []*PlanNode{node}}
	}
	if len(sp.sortKeys) > 0 {
		var err error
		it, err = relation.NewSort(it, sp.sortKeys)
		if err != nil {
			return nil, err
		}
		node = &PlanNode{Op: "Sort", Detail: "[" + strings.Join(sp.sortDisplay, ", ") + "]", Children: []*PlanNode{node}}
	}
	if stmt.Limit >= 0 || stmt.Offset > 0 {
		it = relation.NewLimit(it, stmt.Limit, stmt.Offset)
		node = &PlanNode{Op: "Limit", Detail: limitDetail(stmt), Children: []*PlanNode{node}}
	}
	return &compiled{it: it, plan: node, columns: sp.visible, hidden: sp.nHidden}, nil
}

// compileSimple handles the non-aggregate path.
func compileSimple(in pipe, inNode *PlanNode, stmt *SelectStmt, ctx *execCtx) (*compiled, error) {
	sp, err := buildSimplePlan(stmt, in.schema())
	if err != nil {
		return nil, err
	}
	exprs, err := compileSimpleExprs(binder{schema: in.schema()}, ctx, sp)
	if err != nil {
		return nil, err
	}
	it, err := project(in, exprs)
	if err != nil {
		return nil, err
	}
	node := &PlanNode{Op: "Project", Detail: "[" + strings.Join(sp.visible, ", ") + "]", Batched: in.batched(), Children: []*PlanNode{inNode}}
	return finishSimple(it, node, stmt, sp)
}

func orderItemSQL(oi OrderItem) string {
	s := oi.Expr.SQL()
	if oi.Desc {
		s += " DESC"
	}
	return s
}

func limitDetail(stmt *SelectStmt) string {
	d := ""
	if stmt.Limit >= 0 {
		d = fmt.Sprintf("%d", stmt.Limit)
	}
	if stmt.Offset > 0 {
		if d != "" {
			d += " "
		}
		d += fmt.Sprintf("OFFSET %d", stmt.Offset)
	}
	return d
}

// aggPlan is the AST-level shape of an aggregate statement: the collected
// aggregate calls, the pre-projection items (group keys then aggregate
// arguments), and the aggregation specs. Like simplePlan, it is computed
// once and compiled per pipeline.
type aggPlan struct {
	rw        *aggRewriter
	pre       []projItem
	groupCols []string
	groupSQL  map[string]string
	specs     []relation.AggSpec
}

// buildAggPlan collects aggregate calls from the select items, HAVING and
// ORDER BY, and lays out the pre-projection and aggregation specs.
func buildAggPlan(stmt *SelectStmt) (*aggPlan, error) {
	rw := &aggRewriter{bySQL: map[string]string{}}
	for _, it := range stmt.Items {
		rw.collect(it.Expr)
	}
	if stmt.Having != nil {
		rw.collect(stmt.Having)
	}
	for _, oi := range stmt.OrderBy {
		rw.collect(oi.Expr)
	}

	ap := &aggPlan{
		rw:        rw,
		groupCols: make([]string, len(stmt.GroupBy)),
		groupSQL:  make(map[string]string, len(stmt.GroupBy)),
	}
	for i, ge := range stmt.GroupBy {
		name := fmt.Sprintf("__g%d", i)
		if cr, ok := ge.(*ColumnRef); ok {
			name = cr.Name
		}
		ap.pre = append(ap.pre, projItem{expr: ge, name: name, captureErr: true})
		ap.groupCols[i] = name
		ap.groupSQL[ge.SQL()] = name
	}
	for i, call := range rw.calls {
		outName := fmt.Sprintf("__agg%d", i)
		rw.bySQL[call.SQL()] = outName
		spec := relation.AggSpec{As: outName}
		switch call.Name {
		case "count":
			if len(call.Args) == 1 {
				if _, isStar := call.Args[0].(*Star); isStar {
					spec.Kind = relation.AggCountStar
					ap.specs = append(ap.specs, spec)
					continue
				}
			}
			spec.Kind = relation.AggCount
		case "sum":
			spec.Kind = relation.AggSum
		case "avg":
			spec.Kind = relation.AggAvg
		case "min":
			spec.Kind = relation.AggMin
		case "max":
			spec.Kind = relation.AggMax
		}
		if len(call.Args) != 1 {
			return nil, fmt.Errorf("sql: %s expects one argument", call.Name)
		}
		argName := fmt.Sprintf("__arg%d", i)
		ap.pre = append(ap.pre, projItem{expr: call.Args[0], name: argName, captureErr: true})
		spec.Col = argName
		ap.specs = append(ap.specs, spec)
	}
	return ap, nil
}

// compileAggPre compiles the pre-projection (group keys and aggregate
// arguments) against one pipeline's binder.
func compileAggPre(b binder, ctx *execCtx, ap *aggPlan) ([]relation.BatchProjExpr, error) {
	pre := make([]relation.BatchProjExpr, 0, len(ap.pre))
	for _, it := range ap.pre {
		e, err := compileProjExpr(b, ctx, it.expr, it.name, it.captureErr)
		if err != nil {
			return nil, err
		}
		pre = append(pre, e)
	}
	return pre, nil
}

// compileAggregate handles GROUP BY / aggregate queries by (1) pre-projecting
// group keys and aggregate arguments, (2) hash aggregation, (3) rewriting the
// select list, HAVING and ORDER BY to reference the aggregated schema. On a
// batched input, (1) and (2) run vectorized: pre-projection aliases plain
// column references and hash aggregation reads column slices directly, so a
// full-scan GROUP BY allocates nothing per input row.
func compileAggregate(in pipe, inNode *PlanNode, stmt *SelectStmt, ctx *execCtx) (*compiled, error) {
	ap, err := buildAggPlan(stmt)
	if err != nil {
		return nil, err
	}
	pre, err := compileAggPre(binder{schema: in.schema()}, ctx, ap)
	if err != nil {
		return nil, err
	}

	var grouped relation.Iterator
	if in.batched() {
		proj, err := relation.NewBatchProject(in.batch, pre)
		if err != nil {
			return nil, err
		}
		grouped, err = relation.NewBatchGroup(proj, ap.groupCols, ap.specs)
		if err != nil {
			return nil, err
		}
	} else {
		proj, err := relation.NewProject(in.rows, relation.RowProjExprs(pre))
		if err != nil {
			return nil, err
		}
		grouped, err = relation.NewGroup(proj, ap.groupCols, ap.specs)
		if err != nil {
			return nil, err
		}
	}
	node := &PlanNode{Op: "Aggregate", Detail: aggDetail(ap.groupCols, ap.rw.calls), Batched: in.batched(), Children: []*PlanNode{inNode}}
	return compileAggPost(grouped, node, stmt, ctx, ap)
}

// compileAggPost stacks the post-aggregation half of the pipeline — HAVING,
// select-list rewrite, DISTINCT, ORDER BY, LIMIT — on an aggregated row
// stream. Shared by the serial path and the parallel path (where the input
// is the merged partial aggregate).
func compileAggPost(grouped relation.Iterator, node *PlanNode, stmt *SelectStmt, ctx *execCtx, ap *aggPlan) (*compiled, error) {
	rw, groupSQL := ap.rw, ap.groupSQL
	// Post-aggregation binder over the grouped schema.
	gb := binder{schema: grouped.Schema()}
	out := grouped
	if stmt.Having != nil {
		hexpr := rw.rewrite(stmt.Having, groupSQL)
		var err error
		out, err = applyFilter(ctx, out, hexpr)
		if err != nil {
			return nil, err
		}
		node = &PlanNode{Op: "Filter", Detail: "HAVING " + stmt.Having.SQL(), Children: []*PlanNode{node}}
	}

	if len(stmt.Items) == 0 {
		return nil, fmt.Errorf("sql: SELECT * is not valid with GROUP BY")
	}
	var exprs []relation.ProjExpr
	var visible []string
	for _, item := range stmt.Items {
		re := rw.rewrite(item.Expr, groupSQL)
		f, err := gb.compile(re)
		if err != nil {
			return nil, fmt.Errorf("%w (non-aggregated column in aggregate query?)", err)
		}
		ff := f
		capturedErr := new(error)
		ctx.register(capturedErr)
		name := item.OutputName()
		exprs = append(exprs, relation.ProjExpr{Name: name, Type: inferType(re, grouped.Schema()), Eval: func(r relation.Row) relation.Value {
			v, err := ff(r)
			if err != nil && *capturedErr == nil {
				*capturedErr = err
			}
			return v
		}})
		visible = append(visible, name)
	}
	sortKeys := make([]relation.SortKey, 0, len(stmt.OrderBy))
	sortDisplay := make([]string, 0, len(stmt.OrderBy))
	var nHidden int
	outNames := map[string]bool{}
	for _, v := range visible {
		outNames[strings.ToLower(v)] = true
	}
	for i, oi := range stmt.OrderBy {
		if cr, ok := oi.Expr.(*ColumnRef); ok && cr.Table == "" && outNames[strings.ToLower(cr.Name)] {
			sortKeys = append(sortKeys, relation.SortKey{Col: cr.Name, Desc: oi.Desc})
			sortDisplay = append(sortDisplay, orderItemSQL(oi))
			continue
		}
		re := rw.rewrite(oi.Expr, groupSQL)
		f, err := gb.compile(re)
		if err != nil {
			return nil, err
		}
		ff := f
		name := fmt.Sprintf("__sort%d", i)
		exprs = append(exprs, relation.ProjExpr{Name: name, Type: inferType(re, grouped.Schema()), Eval: func(r relation.Row) relation.Value {
			v, _ := ff(r)
			return v
		}})
		nHidden++
		sortKeys = append(sortKeys, relation.SortKey{Col: name, Desc: oi.Desc})
		sortDisplay = append(sortDisplay, orderItemSQL(oi))
	}

	post, err := relation.NewProject(out, exprs)
	if err != nil {
		return nil, err
	}
	var final relation.Iterator = post
	node = &PlanNode{Op: "Project", Detail: "[" + strings.Join(visible, ", ") + "]", Children: []*PlanNode{node}}
	if stmt.Distinct {
		if nHidden > 0 {
			return nil, fmt.Errorf("sql: ORDER BY with DISTINCT must reference selected columns")
		}
		final = relation.NewDistinct(final)
		node = &PlanNode{Op: "Distinct", Children: []*PlanNode{node}}
	}
	if len(sortKeys) > 0 {
		final, err = relation.NewSort(final, sortKeys)
		if err != nil {
			return nil, err
		}
		node = &PlanNode{Op: "Sort", Detail: "[" + strings.Join(sortDisplay, ", ") + "]", Children: []*PlanNode{node}}
	}
	if stmt.Limit >= 0 || stmt.Offset > 0 {
		final = relation.NewLimit(final, stmt.Limit, stmt.Offset)
		node = &PlanNode{Op: "Limit", Detail: limitDetail(stmt), Children: []*PlanNode{node}}
	}
	return &compiled{it: final, plan: node, columns: visible, hidden: nHidden}, nil
}

func aggDetail(groupCols []string, calls []*FuncCall) string {
	var parts []string
	if len(groupCols) > 0 {
		parts = append(parts, "group by ["+strings.Join(groupCols, ", ")+"]")
	}
	aggs := make([]string, len(calls))
	for i, c := range calls {
		aggs[i] = c.SQL()
	}
	if len(aggs) > 0 {
		parts = append(parts, "aggs ["+strings.Join(aggs, ", ")+"]")
	}
	return strings.Join(parts, " ")
}

// aggRewriter collects aggregate FuncCalls and rewrites expressions to
// reference their output columns.
type aggRewriter struct {
	calls []*FuncCall
	bySQL map[string]string // agg SQL -> output column
}

func (rw *aggRewriter) collect(e Expr) {
	switch x := e.(type) {
	case *FuncCall:
		if x.IsAggregate() {
			sql := x.SQL()
			for _, c := range rw.calls {
				if c.SQL() == sql {
					return
				}
			}
			rw.calls = append(rw.calls, x)
			return
		}
		for _, a := range x.Args {
			rw.collect(a)
		}
	case *BinaryExpr:
		rw.collect(x.Left)
		rw.collect(x.Right)
	case *UnaryExpr:
		rw.collect(x.Expr)
	case *IsNullExpr:
		rw.collect(x.Expr)
	case *InExpr:
		rw.collect(x.Expr)
		for _, a := range x.List {
			rw.collect(a)
		}
	case *BetweenExpr:
		rw.collect(x.Expr)
		rw.collect(x.Lo)
		rw.collect(x.Hi)
	}
}

// rewrite replaces aggregate calls and group-by expressions with column refs
// into the aggregated schema.
func (rw *aggRewriter) rewrite(e Expr, groupSQL map[string]string) Expr {
	if name, ok := groupSQL[e.SQL()]; ok {
		return &ColumnRef{Name: name}
	}
	switch x := e.(type) {
	case *FuncCall:
		if x.IsAggregate() {
			if name, ok := rw.bySQL[x.SQL()]; ok {
				return &ColumnRef{Name: name}
			}
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rw.rewrite(a, groupSQL)
		}
		return &FuncCall{Name: x.Name, Args: args}
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, Left: rw.rewrite(x.Left, groupSQL), Right: rw.rewrite(x.Right, groupSQL)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, Expr: rw.rewrite(x.Expr, groupSQL)}
	case *IsNullExpr:
		return &IsNullExpr{Expr: rw.rewrite(x.Expr, groupSQL), Negate: x.Negate}
	case *InExpr:
		list := make([]Expr, len(x.List))
		for i, a := range x.List {
			list[i] = rw.rewrite(a, groupSQL)
		}
		return &InExpr{Expr: rw.rewrite(x.Expr, groupSQL), List: list, Negate: x.Negate}
	case *BetweenExpr:
		return &BetweenExpr{Expr: rw.rewrite(x.Expr, groupSQL), Lo: rw.rewrite(x.Lo, groupSQL), Hi: rw.rewrite(x.Hi, groupSQL), Negate: x.Negate}
	}
	return e
}

// inferType gives a best-effort output type for projection schemas. The
// relation kernel treats types dynamically, so TText as a fallback is safe.
func inferType(e Expr, s *relation.Schema) relation.Type {
	switch x := e.(type) {
	case *Literal:
		if x.Value.IsNull() {
			return relation.TText
		}
		return x.Value.Type()
	case *ColumnRef:
		if x.Table != "" {
			if i := s.Index(x.Table + "." + x.Name); i >= 0 {
				return s.Col(i).Type
			}
		}
		if i := s.Index(x.Name); i >= 0 {
			return s.Col(i).Type
		}
		return relation.TText
	case *BinaryExpr:
		switch x.Op {
		case "AND", "OR", "=", "!=", "<", "<=", ">", ">=", "LIKE":
			return relation.TBool
		}
		lt := inferType(x.Left, s)
		rt := inferType(x.Right, s)
		if x.Op == "/" || lt == relation.TFloat || rt == relation.TFloat {
			return relation.TFloat
		}
		if lt == relation.TText && rt == relation.TText {
			return relation.TText
		}
		return relation.TInt
	case *UnaryExpr:
		if x.Op == "NOT" {
			return relation.TBool
		}
		return inferType(x.Expr, s)
	case *IsNullExpr, *InExpr, *BetweenExpr:
		return relation.TBool
	case *FuncCall:
		switch x.Name {
		case "count":
			return relation.TInt
		case "sum", "avg", "abs", "cast_float":
			return relation.TFloat
		case "length", "cast_int":
			return relation.TInt
		case "lower", "upper", "trim", "cast_text":
			return relation.TText
		case "min", "max", "coalesce":
			if len(x.Args) > 0 {
				return inferType(x.Args[0], s)
			}
		}
		return relation.TText
	}
	return relation.TText
}
