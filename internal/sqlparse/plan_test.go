package sqlparse

import (
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strings"
	"testing"

	"flordb/internal/record"
	"flordb/internal/relation"
)

// indexedDB is testDB plus the secondary indexes the planner exploits.
func indexedDB(t *testing.T) *relation.Database {
	t.Helper()
	db := testDB(t)
	logs, _ := db.Table("logs")
	if _, err := logs.CreateHashIndex("projid", "value_name"); err != nil {
		t.Fatal(err)
	}
	if _, err := logs.CreateOrderedIndex("tstamp"); err != nil {
		t.Fatal(err)
	}
	runs, _ := db.Table("runs")
	if _, err := runs.CreateHashIndex("vid"); err != nil {
		t.Fatal(err)
	}
	if _, err := runs.CreateOrderedIndex("tstamp"); err != nil {
		t.Fatal(err)
	}
	return db
}

func explain(t *testing.T, db *relation.Database, q string) string {
	t.Helper()
	res := mustRun(t, db, "EXPLAIN "+q)
	var lines []string
	for _, r := range res.Rows {
		lines = append(lines, r[0].AsText())
	}
	return strings.Join(lines, "\n")
}

func TestExplainPointQueryUsesIndexLookup(t *testing.T) {
	// The acceptance query from the issue, over the real Figure-1 schema.
	db := relation.NewDatabase()
	if _, err := record.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	plan := explain(t, db, "SELECT value FROM logs WHERE projid = 'p' AND value_name = 'acc'")
	if !strings.Contains(plan, "IndexLookup logs via hash(projid, value_name) = ('p', 'acc')") {
		t.Fatalf("plan does not use the index:\n%s", plan)
	}
	if strings.Contains(plan, "Scan") {
		t.Fatalf("plan still scans:\n%s", plan)
	}
}

func TestExplainRangeQueryUsesOrderedIndex(t *testing.T) {
	db := indexedDB(t)
	plan := explain(t, db, "SELECT value FROM logs WHERE tstamp BETWEEN 1 AND 2 AND value_name = 'acc'")
	if !strings.Contains(plan, "IndexRange logs via ordered(tstamp): tstamp >= 1 AND tstamp <= 2") {
		t.Fatalf("plan does not range-scan the ordered index:\n%s", plan)
	}
	// The non-sargable part must survive as a residual filter.
	if !strings.Contains(plan, "Filter (value_name = 'acc')") {
		t.Fatalf("residual filter missing:\n%s", plan)
	}

	// Bounds from >/>= conjuncts combine, exclusivity preserved.
	plan = explain(t, db, "SELECT value FROM logs WHERE tstamp > 1 AND tstamp <= 3")
	if !strings.Contains(plan, "tstamp > 1 AND tstamp <= 3") {
		t.Fatalf("bounds not combined:\n%s", plan)
	}
}

func TestExplainInListExpandsIndexKeys(t *testing.T) {
	db := indexedDB(t)
	plan := explain(t, db, "SELECT value FROM logs WHERE projid = 'pdf' AND value_name IN ('acc', 'recall')")
	if !strings.Contains(plan, "IndexLookup logs via hash(projid, value_name) IN (('pdf', 'acc'), ('pdf', 'recall'))") {
		t.Fatalf("IN not expanded into index keys:\n%s", plan)
	}
}

func TestExplainJoinPushdownAndBuildSide(t *testing.T) {
	db := indexedDB(t)
	plan := explain(t, db, `SELECT l.value FROM logs l JOIN runs r ON l.tstamp = r.tstamp
		WHERE l.projid = 'pdf' AND l.value_name = 'acc' AND r.vid = 'v2'`)
	if !strings.Contains(plan, "HashJoin") {
		t.Fatalf("no hash join:\n%s", plan)
	}
	// Both sides got their predicates pushed into index lookups below the join.
	if !strings.Contains(plan, "IndexLookup logs AS l via hash(projid, value_name)") {
		t.Fatalf("left pushdown missing:\n%s", plan)
	}
	if !strings.Contains(plan, "IndexLookup runs AS r via hash(vid) = ('v2')") {
		t.Fatalf("right pushdown missing:\n%s", plan)
	}
	// Nothing left to filter above the join.
	if strings.Contains(plan, "Filter") {
		t.Fatalf("unexpected residual filter:\n%s", plan)
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	db := indexedDB(t)
	calls := 0
	vt := &relation.FuncVirtualTable{
		TableName: "vtab",
		TableSchema: relation.MustSchema(
			relation.Column{Name: "k", Type: relation.TInt},
		),
		RowsFn: func() []relation.Row {
			calls++
			return nil
		},
	}
	if err := db.RegisterVirtual(vt); err != nil {
		t.Fatal(err)
	}
	mustRun(t, db, "EXPLAIN SELECT k FROM vtab WHERE k > 0")
	mustRun(t, db, "EXPLAIN SELECT l.value FROM logs l JOIN vtab v ON l.tstamp = v.k")
	if calls != 0 {
		t.Fatalf("EXPLAIN materialized the virtual table %d times", calls)
	}
	// Sanity: real execution does materialize it.
	mustRun(t, db, "SELECT k FROM vtab")
	if calls != 1 {
		t.Fatalf("execution should materialize once, got %d", calls)
	}
}

func TestNonSargableShapesStayResidual(t *testing.T) {
	db := indexedDB(t)
	for _, q := range []string{
		"SELECT value FROM logs WHERE projid = 'pdf' OR value_name = 'acc'", // OR
		"SELECT value FROM logs WHERE value_name NOT IN ('acc')",            // NOT IN
		"SELECT value FROM logs WHERE lower(projid) = 'pdf'",                // func of col
		"SELECT value FROM logs WHERE projid = value_name",                  // col = col
		"SELECT value FROM logs WHERE projid = NULL",                        // NULL literal
	} {
		plan := explain(t, db, q)
		if strings.Contains(plan, "IndexLookup") || strings.Contains(plan, "IndexRange") {
			t.Fatalf("%s\nshould not be index-backed:\n%s", q, plan)
		}
	}
	// And semantics hold: col = NULL matches nothing.
	if res := mustRun(t, db, "SELECT value FROM logs WHERE projid = NULL"); len(res.Rows) != 0 {
		t.Fatalf("projid = NULL returned %d rows", len(res.Rows))
	}
}

func TestJoinResidualErrorPropagates(t *testing.T) {
	// A deferred evaluation error in a join's residual ON predicate was
	// silently swallowed before the planner rework: only the outermost
	// filter's error slot was checked. '-' on text operands fails at eval
	// time, after the plan compiles.
	db := indexedDB(t)
	_, err := Run(db, `SELECT l.value FROM logs l JOIN runs r ON l.tstamp = r.tstamp
		AND l.value - r.vid = 0`)
	if err == nil || !strings.Contains(err.Error(), "non-numeric") {
		t.Fatalf("join residual eval error not propagated, got %v", err)
	}
	// The naive executor propagates it too.
	stmt, perr := Parse(`SELECT l.value FROM logs l JOIN runs r ON l.tstamp = r.tstamp
		AND l.value - r.vid = 0`)
	if perr != nil {
		t.Fatal(perr)
	}
	if _, err := ExecuteScan(db, stmt); err == nil {
		t.Fatal("naive executor swallowed the residual error")
	}
}

func TestWhereEvalErrorPropagates(t *testing.T) {
	db := indexedDB(t)
	if _, err := Run(db, "SELECT value FROM logs WHERE value - tstamp = 1"); err == nil {
		t.Fatal("WHERE eval error not propagated")
	}
}

func TestAggregatePathEvalErrorsPropagate(t *testing.T) {
	db := indexedDB(t)
	// HAVING eval error: LIKE on an integer group key fails at eval time and
	// previously turned into a silently empty result.
	_, err := Run(db, "SELECT tstamp, count(*) AS n FROM logs GROUP BY tstamp HAVING tstamp LIKE 'x'")
	if err == nil || !strings.Contains(err.Error(), "LIKE") {
		t.Fatalf("HAVING eval error not propagated: %v", err)
	}
	// Group-key and aggregate-argument eval errors propagate too.
	if _, err := Run(db, "SELECT value - tstamp AS k, count(*) AS n FROM logs GROUP BY value - tstamp"); err == nil {
		t.Fatal("group-key eval error not propagated")
	}
	if _, err := Run(db, "SELECT sum(value - tstamp) AS s FROM logs"); err == nil {
		t.Fatal("aggregate-argument eval error not propagated")
	}
}

// TestPlannerEquivalenceRandomized is the property test from the acceptance
// criteria: every planned query returns the same multiset of rows as the
// naive full-scan executor, across randomized predicates, joins, projections
// and aggregates.
func TestPlannerEquivalenceRandomized(t *testing.T) {
	db := randomWorkloadDB(t)
	rng := rand.New(rand.NewSource(20260728))
	for i := 0; i < 400; i++ {
		q := randomQuery(rng)
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("generated unparsable query %q: %v", q, err)
		}
		planned, perr := Execute(db, stmt)
		stmt2, _ := Parse(q) // fresh AST in case execution mutates state
		naive, nerr := ExecuteScan(db, stmt2)
		if (perr == nil) != (nerr == nil) {
			t.Fatalf("query %q: planned err=%v naive err=%v", q, perr, nerr)
		}
		if perr != nil {
			continue
		}
		if d := diffResults(planned, naive); d != "" {
			plan := explain(t, db, q)
			t.Fatalf("query %q: planned and naive results differ: %s\nplan:\n%s", q, d, plan)
		}
	}
}

// randomWorkloadDB builds an indexed logs/runs pair with NULLs, duplicate
// keys and tombstoned rows — the shapes the access paths must agree on.
func randomWorkloadDB(t *testing.T) *relation.Database {
	t.Helper()
	return randomWorkloadDBOpts(t, true)
}

// randomWorkloadDBOpts is randomWorkloadDB with index creation optional:
// without indexes every planned query takes the vectorized batch-scan path,
// which is what the per-operator batch-vs-row equivalence tests exercise.
func randomWorkloadDBOpts(t *testing.T, indexed bool) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	logs, err := db.CreateTable("logs", relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText},
		relation.Column{Name: "tstamp", Type: relation.TInt},
		relation.Column{Name: "value_name", Type: relation.TText},
		relation.Column{Name: "value", Type: relation.TFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	if indexed {
		if _, err := logs.CreateHashIndex("projid", "value_name"); err != nil {
			t.Fatal(err)
		}
		if _, err := logs.CreateOrderedIndex("tstamp"); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	projids := []string{"p1", "p2", "p3"}
	names := []string{"acc", "recall", "loss", "f1"}
	var ids []relation.RowID
	for i := 0; i < 500; i++ {
		val := relation.Null()
		if rng.Intn(10) > 0 {
			val = relation.Float(float64(rng.Intn(100)) / 100)
		}
		ts := relation.Null()
		if rng.Intn(20) > 0 {
			ts = relation.Int(int64(rng.Intn(50)))
		}
		id, err := logs.Insert(relation.Row{
			relation.Text(projids[rng.Intn(len(projids))]),
			ts,
			relation.Text(names[rng.Intn(len(names))]),
			val,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if rng.Intn(10) == 0 { // tombstones
			logs.Delete(id)
		}
	}
	runs, err := db.CreateTable("runs", relation.MustSchema(
		relation.Column{Name: "tstamp", Type: relation.TInt},
		relation.Column{Name: "vid", Type: relation.TText},
	))
	if err != nil {
		t.Fatal(err)
	}
	if indexed {
		if _, err := runs.CreateOrderedIndex("tstamp"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := runs.Insert(relation.Row{
			relation.Int(int64(i)), relation.Text(fmt.Sprintf("v%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

var logsColRE = regexp.MustCompile(`\b(projid|tstamp|value_name|value)\b`)

func randomQuery(rng *rand.Rand) string {
	conjPool := []func() string{
		func() string { return fmt.Sprintf("projid = 'p%d'", rng.Intn(4)) },
		func() string { return fmt.Sprintf("'p%d' = projid", rng.Intn(4)) },
		func() string {
			return fmt.Sprintf("value_name = '%s'", []string{"acc", "recall", "loss", "nope"}[rng.Intn(4)])
		},
		func() string {
			return fmt.Sprintf("value_name IN ('acc', '%s')", []string{"recall", "loss"}[rng.Intn(2)])
		},
		func() string { return fmt.Sprintf("tstamp BETWEEN %d AND %d", rng.Intn(50), rng.Intn(50)) },
		func() string { return fmt.Sprintf("tstamp > %d", rng.Intn(50)) },
		func() string { return fmt.Sprintf("tstamp <= %d", rng.Intn(50)) },
		func() string { return fmt.Sprintf("tstamp = %d", rng.Intn(50)) },
		func() string { return fmt.Sprintf("value > 0.%d", rng.Intn(9)) },
		func() string { return "value IS NOT NULL" },
		func() string { return "tstamp IS NULL" },
		func() string { return fmt.Sprintf("(projid = 'p1' OR tstamp > %d)", rng.Intn(50)) },
		func() string { return fmt.Sprintf("NOT (tstamp = %d)", rng.Intn(50)) },
	}
	join := rng.Intn(3) == 0
	var sb strings.Builder
	if join {
		sb.WriteString("SELECT l.projid, l.value, r.vid FROM logs l JOIN runs r ON l.tstamp = r.tstamp")
	} else {
		switch rng.Intn(3) {
		case 0:
			sb.WriteString("SELECT * FROM logs")
		case 1:
			sb.WriteString("SELECT projid, value_name, value FROM logs")
		default:
			sb.WriteString("SELECT value_name, count(*) AS n, max(value) AS mx FROM logs")
		}
	}
	n := rng.Intn(4)
	qualify := func(c string) string {
		if !join {
			return c
		}
		// Qualify logs columns with the alias half the time; bare names
		// resolve to the left side either way.
		if rng.Intn(2) == 0 {
			c = logsColRE.ReplaceAllString(c, "l.$1")
		}
		return c
	}
	for i := 0; i < n; i++ {
		if i == 0 {
			sb.WriteString(" WHERE ")
		} else {
			sb.WriteString(" AND ")
		}
		sb.WriteString(qualify(conjPool[rng.Intn(len(conjPool))]()))
	}
	if join && rng.Intn(2) == 0 {
		if n == 0 {
			sb.WriteString(" WHERE ")
		} else {
			sb.WriteString(" AND ")
		}
		sb.WriteString(fmt.Sprintf("r.tstamp < %d", rng.Intn(50)))
	}
	if !join && strings.Contains(sb.String(), "count(*)") {
		sb.WriteString(" GROUP BY value_name")
	}
	return sb.String()
}

// diffResults compares two results as multisets of rendered rows.
func diffResults(a, b *Result) string {
	if len(a.Columns) != len(b.Columns) {
		return fmt.Sprintf("column counts differ: %v vs %v", a.Columns, b.Columns)
	}
	canon := func(res *Result) []string {
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			parts := make([]string, len(r))
			for j, v := range r {
				parts[j] = fmt.Sprintf("%d:%s", v.Type(), v.String())
			}
			out[i] = strings.Join(parts, "|")
		}
		sort.Strings(out)
		return out
	}
	ca, cb := canon(a), canon(b)
	if len(ca) != len(cb) {
		return fmt.Sprintf("row counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return fmt.Sprintf("row %d differs: %s vs %s", i, ca[i], cb[i])
		}
	}
	return ""
}

func TestExplainViaRunReturnsPlanColumn(t *testing.T) {
	db := indexedDB(t)
	res := mustRun(t, db, "EXPLAIN SELECT value FROM logs WHERE tstamp > 1 ORDER BY value DESC LIMIT 2")
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns = %v", res.Columns)
	}
	plan := explain(t, db, "SELECT value FROM logs WHERE tstamp > 1 ORDER BY value DESC LIMIT 2")
	for _, want := range []string{"Limit 2", "Sort [value DESC]", "Project [value]", "IndexRange"} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
}
