package sqlparse

import "flordb/internal/relation"

// Zone-map filter compilation: turn the WHERE clause into a
// relation.ZoneFilter that decides, from a page's per-column min/max and
// null-count zone, whether the page can be skipped without decoding.
//
// The filter answers "can any row in this page possibly satisfy the
// predicate?" — it may only return true (skip) when the answer is provably
// no. Everything it cannot reason about compiles to nil, which downstream
// means "never skip". The supported shapes mirror kernelize exactly, and a
// zone filter is only ever armed when the *whole* predicate kernelizes: a
// predicate with a fallback-evaluated subtree could raise a deferred
// evaluation error on a row, and skipping the page would suppress that error
// (binder.compile's AND evaluates the right side when the left is NULL, so
// even one AND conjunct can carry another's error). Kernels never produce
// evaluation errors, so under this gate pruning is behavior-identical to the
// serial scan.
//
// Soundness notes per shape (z tracks non-NULL cells only; NULL comparisons
// are never satisfied, so NULL cells can be ignored for every shape except
// IS [NOT] NULL, which uses the null count):
//
//   - A page whose column zone has Min == NULL holds no non-NULL cell, so
//     any comparison / IN / BETWEEN prunes it.
//   - col = lit: skip when lit < Min or lit > Max.
//   - col != lit: skip when Min == lit == Max (every non-NULL cell equals lit).
//   - col < lit: skip when Min >= lit; col <= lit: skip when Min > lit.
//   - col > lit: skip when Max <= lit; col >= lit: skip when Max < lit.
//   - A NULL literal satisfies no row at all — always skip.
//   - IN: skip when every non-NULL list literal falls outside [Min, Max]
//     (NULL list items never match; an all-NULL list matches nothing).
//   - BETWEEN lo AND hi: skip when Max < lo or Min > hi; a NULL bound makes
//     the predicate NULL everywhere — always skip. NOT BETWEEN: skip when
//     the whole zone lies inside [lo, hi].
//   - IS NULL: skip when NullCount == 0; IS NOT NULL: when NullCount == Rows.
//   - AND: a page skippable by either conjunct is skippable. OR: only a page
//     skippable by both disjuncts is skippable (both must compile).
//   - Column-vs-column comparisons and anything else: nil (never skip).
//
// Ordering uses relation.ComparePtr — the same total order the kernels
// filter by — so numeric cross-type comparisons prune consistently.
func (b binder) zoneFilter(e Expr) relation.ZoneFilter {
	switch x := e.(type) {
	case *BinaryExpr:
		switch x.Op {
		case "AND":
			l, r := b.zoneFilter(x.Left), b.zoneFilter(x.Right)
			if l == nil && r == nil {
				return nil
			}
			return func(z *relation.PageZone) bool {
				return (l != nil && l(z)) || (r != nil && r(z))
			}
		case "OR":
			l, r := b.zoneFilter(x.Left), b.zoneFilter(x.Right)
			if l == nil || r == nil {
				return nil
			}
			return func(z *relation.PageZone) bool { return l(z) && r(z) }
		case "=", "!=", "<", "<=", ">", ">=":
			if lref, ok := x.Left.(*ColumnRef); ok {
				if lit, ok := literalOf(x.Right); ok {
					p, err := b.resolve(lref)
					if err != nil {
						return nil
					}
					return zoneCmpFilter(p, lit, x.Op)
				}
			}
			if rref, ok := x.Right.(*ColumnRef); ok {
				if lit, ok := literalOf(x.Left); ok {
					p, err := b.resolve(rref)
					if err != nil {
						return nil
					}
					var flip = map[string]string{"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
					return zoneCmpFilter(p, lit, flip[x.Op])
				}
			}
		}
	case *IsNullExpr:
		ref, ok := x.Expr.(*ColumnRef)
		if !ok {
			return nil
		}
		p, err := b.resolve(ref)
		if err != nil {
			return nil
		}
		negate := x.Negate
		return func(z *relation.PageZone) bool {
			if negate {
				return z.Cols[p].NullCount == z.Rows
			}
			return z.Cols[p].NullCount == 0
		}
	case *InExpr:
		if x.Negate {
			return nil // NOT IN excludes a finite set; min/max bounds say nothing
		}
		ref, ok := x.Expr.(*ColumnRef)
		if !ok {
			return nil
		}
		p, err := b.resolve(ref)
		if err != nil {
			return nil
		}
		lits := make([]relation.Value, 0, len(x.List))
		for _, le := range x.List {
			lit, ok := literalOf(le)
			if !ok {
				return nil
			}
			lits = append(lits, lit)
		}
		return func(z *relation.PageZone) bool {
			cz := &z.Cols[p]
			if cz.Min.IsNull() {
				return true
			}
			for k := range lits {
				if lits[k].IsNull() {
					continue
				}
				if relation.ComparePtr(&lits[k], &cz.Min) >= 0 && relation.ComparePtr(&lits[k], &cz.Max) <= 0 {
					return false // this literal may match a cell in the page
				}
			}
			return true
		}
	case *BetweenExpr:
		ref, ok := x.Expr.(*ColumnRef)
		if !ok {
			return nil
		}
		p, err := b.resolve(ref)
		if err != nil {
			return nil
		}
		lo, lok := literalOf(x.Lo)
		hi, hok := literalOf(x.Hi)
		if !lok || !hok {
			return nil
		}
		if lo.IsNull() || hi.IsNull() {
			return func(*relation.PageZone) bool { return true }
		}
		negate := x.Negate
		return func(z *relation.PageZone) bool {
			cz := &z.Cols[p]
			if cz.Min.IsNull() {
				return true
			}
			if negate {
				return relation.ComparePtr(&cz.Min, &lo) >= 0 && relation.ComparePtr(&cz.Max, &hi) <= 0
			}
			return relation.ComparePtr(&cz.Max, &lo) < 0 || relation.ComparePtr(&cz.Min, &hi) > 0
		}
	}
	return nil
}

// zoneCmpFilter prunes pages for `col <op> lit` from the column's [Min, Max].
func zoneCmpFilter(pos int, lit relation.Value, op string) relation.ZoneFilter {
	if lit.IsNull() {
		return func(*relation.PageZone) bool { return true }
	}
	return func(z *relation.PageZone) bool {
		cz := &z.Cols[pos]
		if cz.Min.IsNull() {
			return true // no non-NULL cell in the page
		}
		lo := relation.ComparePtr(&lit, &cz.Min)
		hi := relation.ComparePtr(&lit, &cz.Max)
		switch op {
		case "=":
			return lo < 0 || hi > 0
		case "!=":
			return lo == 0 && hi == 0
		case "<":
			return lo <= 0 // Min >= lit: no cell below lit
		case "<=":
			return lo < 0 // Min > lit
		case ">":
			return hi >= 0 // Max <= lit: no cell above lit
		case ">=":
			return hi > 0 // Max < lit
		}
		return false
	}
}
