package sqlparse

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"flordb/internal/relation"
)

func TestParseAsOfEpoch(t *testing.T) {
	stmt, err := Parse("SELECT * FROM logs WHERE tstamp = 1 AS OF 7")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.AsOf == nil || stmt.AsOf.ByTime || stmt.AsOf.Epoch != 7 {
		t.Fatalf("AsOf = %+v, want epoch 7", stmt.AsOf)
	}
}

func TestParseAsOfAfterLimit(t *testing.T) {
	stmt, err := Parse("SELECT * FROM logs ORDER BY tstamp LIMIT 5 OFFSET 1 AS OF 2")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.AsOf == nil || stmt.AsOf.Epoch != 2 || stmt.Limit != 5 || stmt.Offset != 1 {
		t.Fatalf("stmt = limit %d offset %d asof %+v", stmt.Limit, stmt.Offset, stmt.AsOf)
	}
}

func TestParseAsOfDirectlyAfterTable(t *testing.T) {
	// `FROM t AS OF 3` must not read OF as a table alias.
	stmt, err := Parse("SELECT * FROM logs AS OF 3")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.From.Alias != "" || stmt.AsOf == nil || stmt.AsOf.Epoch != 3 {
		t.Fatalf("alias %q asof %+v", stmt.From.Alias, stmt.AsOf)
	}
}

func TestParseAsOfTimestamp(t *testing.T) {
	for _, tc := range []struct {
		lit  string
		want time.Time
	}{
		{"2026-08-01T12:30:00Z", time.Date(2026, 8, 1, 12, 30, 0, 0, time.UTC)},
		{"2026-08-01 12:30:00", time.Date(2026, 8, 1, 12, 30, 0, 0, time.UTC)},
		{"2026-08-01", time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)},
	} {
		stmt, err := Parse("SELECT * FROM logs AS OF TIMESTAMP '" + tc.lit + "'")
		if err != nil {
			t.Fatalf("%s: %v", tc.lit, err)
		}
		if stmt.AsOf == nil || !stmt.AsOf.ByTime || !stmt.AsOf.Time.Equal(tc.want) {
			t.Fatalf("%s: AsOf = %+v, want %v", tc.lit, stmt.AsOf, tc.want)
		}
	}
}

func TestParseAsOfErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT * FROM logs AS OF",
		"SELECT * FROM logs AS OF 'x'",
		"SELECT * FROM logs AS OF TIMESTAMP",
		"SELECT * FROM logs AS OF TIMESTAMP 'not a time'",
		"SELECT * FROM logs AS OF 1 AS OF 2",
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("%q parsed without error", q)
		}
	}
}

// asofDB commits one logs row per epoch so epoch e sees rows 1..e.
func asofDB(t *testing.T) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	logs, err := db.CreateTable("logs", relation.MustSchema(
		relation.Column{Name: "tstamp", Type: relation.TInt},
		relation.Column{Name: "value", Type: relation.TText},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := logs.Insert(relation.Row{relation.Int(int64(i)), relation.Text("v")}); err != nil {
			t.Fatal(err)
		}
		db.AdvanceEpoch()
	}
	return db
}

func TestExecuteAsOfRebasesEpoch(t *testing.T) {
	db := asofDB(t)
	for e := 0; e <= 4; e++ {
		res, err := Run(db, "SELECT count(*) c FROM logs AS OF "+strconv.Itoa(e))
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if got := res.Rows[0][0].AsInt(); got != int64(e) {
			t.Fatalf("AS OF %d count = %d, want %d", e, got, e)
		}
	}
	// Without AS OF: current visibility.
	res, err := Run(db, "SELECT count(*) c FROM logs")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 4 {
		t.Fatalf("current count = %d, want 4", got)
	}
}

func TestExecuteAsOfAgainstSnapshotRefusesFuture(t *testing.T) {
	db := asofDB(t)
	snap, err := db.SnapshotAt(2)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if _, err := Run(snap, "SELECT * FROM logs AS OF 3"); err == nil {
		t.Fatal("AS OF beyond the pinned snapshot accepted")
	}
	res, err := Run(snap, "SELECT count(*) c FROM logs AS OF 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 1 {
		t.Fatalf("rebased count = %d, want 1", got)
	}
}

func TestExecuteAsOfRetiredEpoch(t *testing.T) {
	db := asofDB(t)
	db.GCBelow(3)
	_, err := Run(db, "SELECT * FROM logs AS OF 1")
	if !errors.Is(err, relation.ErrEpochRetired) {
		t.Fatalf("err = %v, want ErrEpochRetired", err)
	}
}

func TestExecuteAsOfByTimeNeedsSession(t *testing.T) {
	db := asofDB(t)
	_, err := Run(db, "SELECT * FROM logs AS OF TIMESTAMP '2026-08-01'")
	if err == nil || !strings.Contains(err.Error(), "session") {
		t.Fatalf("err = %v, want session-required error", err)
	}
}

// TestPlanCacheAsOfBypass is the pollution regression: unique-literal AS OF
// queries must not insert into the cache or evict hot entries, and must not
// count toward hit/miss stats.
func TestPlanCacheAsOfBypass(t *testing.T) {
	c := NewPlanCache(2)
	hot1, hot2 := "SELECT a FROM t", "SELECT b FROM t"
	s1, err := c.Parse(hot1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parse(hot2); err != nil {
		t.Fatal(err)
	}

	for epoch := 0; epoch < 100; epoch++ {
		stmt, err := c.Parse("SELECT a FROM t AS OF " + strconv.Itoa(epoch))
		if err != nil {
			t.Fatal(err)
		}
		if stmt.AsOf == nil || stmt.AsOf.Epoch != int64(epoch) {
			t.Fatalf("AsOf = %+v", stmt.AsOf)
		}
	}

	if c.Len() != 2 {
		t.Fatalf("cache len = %d after AS OF storm, want 2", c.Len())
	}
	s1again, err := c.Parse(hot1)
	if err != nil {
		t.Fatal(err)
	}
	if s1again != s1 {
		t.Fatal("hot entry evicted by AS OF queries")
	}
	// 3 hot parses: 2 misses (first sights) + 1 hit; the 100 AS OF parses
	// contribute nothing.
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 1 / 2", hits, misses)
	}
}

// TestPlanCacheParseErrorNotAMiss: a parse error must not inflate the miss
// counter — misses measure effectiveness on parseable queries.
func TestPlanCacheParseErrorNotAMiss(t *testing.T) {
	c := NewPlanCache(2)
	if _, err := c.Parse("SELEC nonsense"); err == nil {
		t.Fatal("garbage parsed")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("stats after parse error = %d hits / %d misses, want 0 / 0", hits, misses)
	}
}
