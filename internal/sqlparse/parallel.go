package sqlparse

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"flordb/internal/relation"
)

// Morsel-driven parallel scan execution. A qualifying single-table statement
// is compiled into one scan→filter→project (or scan→filter→partial-aggregate)
// pipeline per worker; the table's physical row store is carved into
// page-aligned morsels and workers claim them from a shared atomic counter,
// re-arming their own scan operator per morsel via SetRange. Nothing below
// the sink is shared between workers — each pipeline has its own batch
// buffers, compiled closures, and scratch rows — so the only cross-goroutine
// traffic is the morsel counter and the per-morsel output slots.
//
// Correctness invariants, in terms the equivalence property tests assert:
//
//   - MVCC: every worker's scan resolves against the same published table
//     state semantics as a serial scan (each NextBatch computes its selection
//     vector from the scan's own pinned state), so tombstones and AS OF pins
//     filter identically.
//   - Ordering: non-aggregate results are reassembled in morsel order, which
//     is exactly row-store order — the serial scan's order — before the
//     (stable) ORDER BY/LIMIT operators run, so output is byte-identical to
//     serial. Aggregates merge per-worker partials and emit groups in
//     canonical key order: a deterministic permutation of the serial output,
//     row-multiset-equal; statements where group order changes the visible
//     result (LIMIT/OFFSET) stay serial.
//   - Deferred errors: expression evaluation errors latch into slots
//     registered on the shared execCtx exactly as in serial execution; any
//     worker's error surfaces after the drain. Zone-map pruning is armed only
//     when the whole WHERE kernelizes (kernels are error-free), so pruning
//     never suppresses an error the serial path would have reported.
var parallelMinRows = 8192 // smallest row store worth fanning out; test-overridable

// morselRows is the scan range one worker claims at a time: a multiple of
// the zone page size, so morsel boundaries stay page-aligned and every
// complete page inside a morsel is prunable by its zone.
const morselRows = 4 * relation.ZonePageRows

// EffectiveScanWorkers resolves an ExecOptions.ScanWorkers (or
// flor.Options.ScanWorkers) setting against the host: 0 means GOMAXPROCS,
// anything else is clamped to [1, GOMAXPROCS].
func EffectiveScanWorkers(n int) int {
	maxp := runtime.GOMAXPROCS(0)
	if n <= 0 || n > maxp {
		return maxp
	}
	return n
}

// parallelWorker is one fully compiled worker pipeline.
type parallelWorker struct {
	scan *relation.BatchScanOp
	top  relation.BatchIterator
	pa   *relation.PartialAgg // aggregate mode only
}

// tryParallel compiles a statement for morsel-driven parallel execution. It
// returns (nil, nil) whenever the statement does not qualify or any
// compilation step fails — the caller then runs the serial path, which
// either executes fine or reports the identical error. On success the
// returned execCtx carries the error slots of every worker pipeline and must
// replace the caller's.
func tryParallel(cat relation.Catalog, stmt *SelectStmt, opts ExecOptions) (*compiled, *execCtx) {
	workers := EffectiveScanWorkers(opts.ScanWorkers)
	if workers < 2 || stmt.From.Name == "" || len(stmt.Joins) > 0 {
		return nil, nil
	}
	agg := stmt.HasAggregates() || len(stmt.GroupBy) > 0
	if agg {
		// Merged partials emit groups in canonical key order — a different
		// permutation than the serial first-seen order. Row-set semantics are
		// unaffected, but LIMIT/OFFSET pick rows *by* order, so those stay
		// serial.
		if stmt.Limit >= 0 || stmt.Offset > 0 {
			return nil, nil
		}
	} else {
		if stmt.Having != nil {
			return nil, nil // serial path reports the error
		}
		// Without ORDER BY, a serial LIMIT stops scanning early; a parallel
		// scan would do all the work to throw most of it away.
		if stmt.Limit >= 0 && len(stmt.OrderBy) == 0 {
			return nil, nil
		}
	}
	t, ok := cat.Reader(stmt.From.Name)
	if !ok {
		return nil, nil
	}

	// The serial planner prefers index access paths; mirror its
	// classification and stand down whenever an index would fire, so
	// parallel full scans only ever replace serial full scans.
	var conjs []Expr
	if stmt.Where != nil {
		conjs = flattenAnd(stmt.Where)
	}
	binding := stmt.From.Binding()
	schema := t.Schema()
	eqs := make(map[string]sargable)
	ranges := make(map[string][]sargable)
	for _, c := range conjs {
		s, ok := classifySargable(c, binding, schema)
		if !ok {
			continue
		}
		switch s.op {
		case "=":
			if _, dup := eqs[s.col]; !dup {
				eqs[s.col] = s
			}
			ranges[s.col] = append(ranges[s.col], s)
		case "in":
			if _, dup := eqs[s.col]; !dup {
				eqs[s.col] = s
			}
		default:
			ranges[s.col] = append(ranges[s.col], s)
		}
	}
	if cols, _, _ := chooseHashIndex(t, eqs); cols != nil {
		return nil, nil
	}
	if col, _, _, _, _, _ := chooseOrderedIndex(t, ranges); col != "" {
		return nil, nil
	}

	needed := scanColumns(stmt, schema)

	// Zone-map pruning is armed only when the whole WHERE kernelizes:
	// kernels never produce evaluation errors, so skipping a page can never
	// suppress a deferred error the serial path would have latched.
	var zf relation.ZoneFilter
	if stmt.Where != nil {
		zb := binder{schema: schema}
		if zb.kernelize(stmt.Where) != nil {
			zf = zb.zoneFilter(stmt.Where)
		}
	}

	var sp *simplePlan
	var ap *aggPlan
	var err error
	if agg {
		ap, err = buildAggPlan(stmt)
	} else {
		sp, err = buildSimplePlan(stmt, schema)
	}
	if err != nil {
		return nil, nil
	}

	// Compile every worker pipeline up front, on this goroutine: compiled
	// closures carry per-pipeline scratch buffers and error-slot
	// registration on ctx is not synchronized, so no compilation may happen
	// once workers run.
	ctx := &execCtx{}
	build := func() (*parallelWorker, error) {
		scan := relation.NewBatchScan(t, needed, relation.DefaultBatchSize)
		if zf != nil {
			scan.SetZoneFilter(zf)
		}
		var top relation.BatchIterator = scan
		if stmt.Where != nil {
			evalErr := new(error)
			ctx.register(evalErr)
			pred, err := binder{schema: schema}.compileBatchPredicate(stmt.Where, evalErr)
			if err != nil {
				return nil, err
			}
			top = relation.NewBatchFilter(top, pred)
		}
		w := &parallelWorker{scan: scan}
		if agg {
			pre, err := compileAggPre(binder{schema: schema}, ctx, ap)
			if err != nil {
				return nil, err
			}
			proj, err := relation.NewBatchProject(top, pre)
			if err != nil {
				return nil, err
			}
			w.pa, err = relation.NewPartialAgg(proj.Schema(), ap.groupCols, ap.specs)
			if err != nil {
				return nil, err
			}
			w.top = proj
		} else {
			exprs, err := compileSimpleExprs(binder{schema: schema}, ctx, sp)
			if err != nil {
				return nil, err
			}
			proj, err := relation.NewBatchProject(top, exprs)
			if err != nil {
				return nil, err
			}
			w.top = proj
		}
		return w, nil
	}

	w0, err := build()
	if err != nil {
		return nil, nil
	}
	// Morsels must cover the *physical* row store (tombstoned versions
	// included — visibility is the scan's job), so size them from the
	// resolved store length, not the visible row count. The store is
	// append-only: a range valid against worker 0's state is valid against
	// every worker's.
	storeLen := w0.scan.StoreLen()
	if storeLen < parallelMinRows {
		return nil, nil
	}
	nMorsels := (storeLen + morselRows - 1) / morselRows
	if workers > nMorsels {
		workers = nMorsels
	}
	if workers < 2 {
		return nil, nil
	}
	ws := make([]*parallelWorker, workers)
	ws[0] = w0
	for i := 1; i < workers; i++ {
		if ws[i], err = build(); err != nil {
			return nil, nil
		}
	}

	var out [][]relation.Row
	if !agg {
		out = make([][]relation.Row, nMorsels)
	}
	runWorkers := func() {
		var next atomic.Int64
		panics := make([]any, workers)
		var wg sync.WaitGroup
		for wi, w := range ws {
			wg.Add(1)
			go func(wi int, w *parallelWorker) {
				defer wg.Done()
				defer func() {
					if p := recover(); p != nil {
						panics[wi] = p
					}
				}()
				for {
					m := int(next.Add(1)) - 1
					if m >= nMorsels {
						return
					}
					lo := m * morselRows
					w.scan.SetRange(lo, min(lo+morselRows, storeLen))
					if agg {
						w.pa.Consume(w.top)
						continue
					}
					var rows []relation.Row
					it := relation.NewRowsFromBatches(w.top)
					for {
						r, ok := it.Next()
						if !ok {
							break
						}
						rows = append(rows, r)
					}
					out[m] = rows
				}
			}(wi, w)
		}
		wg.Wait()
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}

	// Plan tree: the per-worker pipeline under a Gather node, then the
	// shared post half on top.
	scanNode := &PlanNode{Op: "Scan", Detail: sourceDetail(stmt.From, int64(t.Len())), Batched: true}
	pnode := scanNode
	if stmt.Where != nil {
		detail := stmt.Where.SQL()
		if zf != nil {
			detail += " [zonemap]"
		}
		pnode = &PlanNode{Op: "Filter", Detail: detail, Batched: true, Children: []*PlanNode{pnode}}
	}
	gatherDetail := fmt.Sprintf("workers=%d morsels=%d", workers, nMorsels)

	if agg {
		pnode = &PlanNode{Op: "PartialAggregate", Detail: aggDetail(ap.groupCols, ap.rw.calls), Batched: true, Children: []*PlanNode{pnode}}
		node := &PlanNode{Op: "Gather", Detail: gatherDetail, Children: []*PlanNode{pnode}}
		// The coordinator pipeline is lazy (EXPLAIN never runs workers):
		// drain all morsels, merge the partials, and emit the merged groups
		// in canonical key order.
		grouped := relation.NewLazyScan(w0.pa.Schema(), func() []relation.Row {
			runWorkers()
			for i := 1; i < workers; i++ {
				w0.pa.Merge(ws[i].pa)
			}
			return w0.pa.Rows()
		})
		c, err := compileAggPost(grouped, node, stmt, ctx, ap)
		if err != nil {
			return nil, nil
		}
		return c, ctx
	}

	pnode = &PlanNode{Op: "Project", Detail: "[" + strings.Join(sp.visible, ", ") + "]", Batched: true, Children: []*PlanNode{pnode}}
	node := &PlanNode{Op: "Gather", Detail: gatherDetail + " order=store", Children: []*PlanNode{pnode}}
	it := relation.NewLazyScan(w0.top.Schema(), func() []relation.Row {
		runWorkers()
		total := 0
		for _, rs := range out {
			total += len(rs)
		}
		all := make([]relation.Row, 0, total)
		for _, rs := range out {
			all = append(all, rs...)
		}
		return all
	})
	c, err := finishSimple(it, node, stmt, sp)
	if err != nil {
		return nil, nil
	}
	return c, ctx
}
