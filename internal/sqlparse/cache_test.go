package sqlparse

import (
	"fmt"
	"sync"
	"testing"
)

func TestPlanCacheHitsAndEviction(t *testing.T) {
	c := NewPlanCache(2)
	q1 := "SELECT a FROM t"
	q2 := "SELECT b FROM t"
	q3 := "SELECT c FROM t"

	s1, err := c.Parse(q1)
	if err != nil {
		t.Fatal(err)
	}
	s1again, err := c.Parse(q1)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s1again {
		t.Fatal("repeat parse must return the cached statement")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses", hits, misses)
	}

	if _, err := c.Parse(q2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parse(q3); err != nil { // evicts q1 (LRU)
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	s1new, err := c.Parse(q1)
	if err != nil {
		t.Fatal(err)
	}
	if s1new == s1 {
		t.Fatal("evicted entry must be re-parsed")
	}
}

func TestPlanCacheLRUOrder(t *testing.T) {
	c := NewPlanCache(2)
	q1, q2, q3 := "SELECT a FROM t", "SELECT b FROM t", "SELECT c FROM t"
	s1, _ := c.Parse(q1)
	c.Parse(q2)
	c.Parse(q1) // touch q1 so q2 becomes LRU
	c.Parse(q3) // must evict q2, not q1
	if got, _ := c.Parse(q1); got != s1 {
		t.Fatal("recently used entry was evicted")
	}
}

func TestPlanCacheErrorsNotCached(t *testing.T) {
	c := NewPlanCache(4)
	if _, err := c.Parse("SELEKT nope"); err == nil {
		t.Fatal("garbage must fail")
	}
	if c.Len() != 0 {
		t.Fatalf("error cached: len = %d", c.Len())
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := fmt.Sprintf("SELECT a FROM t WHERE a = %d", i%16)
				if _, err := c.Parse(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}
