package sqlparse

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"flordb/internal/relation"
)

// The tests in this file pin the vectorized batch executor to the
// row-at-a-time reference, one operator class at a time, reusing the
// TestPlannerEquivalenceRandomized machinery (randomWorkloadDBOpts,
// diffResults). The workload database carries no secondary indexes, so
// every planned query takes the batched scan path — asserted explicitly
// via mustContainBatched, guarding against the batch path silently
// degrading to rows — while ExecuteScan runs the identical statement
// through the volcano row pipeline. They run under -race via `make test`
// like everything else.

type planEquivDB struct {
	db      *relation.Database
	checked int
}

// runEquivalence executes q through both executors and compares multisets;
// error presence must agree too.
func runEquivalence(t *testing.T, db *planEquivDB, q string) {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("generated unparsable query %q: %v", q, err)
	}
	planned, perr := Execute(db.db, stmt)
	stmt2, _ := Parse(q)
	naive, nerr := ExecuteScan(db.db, stmt2)
	if (perr == nil) != (nerr == nil) {
		t.Fatalf("query %q: planned err=%v naive err=%v", q, perr, nerr)
	}
	if perr != nil {
		return
	}
	if d := diffResults(planned, naive); d != "" {
		t.Fatalf("query %q: batched and row results differ: %s\nplan:\n%s",
			q, d, explain(t, db.db, q))
	}
	db.checked++
}

func TestVectorizedFilterEquivalenceRandomized(t *testing.T) {
	db := &planEquivDB{db: randomWorkloadDBOpts(t, false)}
	rng := rand.New(rand.NewSource(20260729))
	pool := filterConjunctPool(rng)
	for i := 0; i < 150; i++ {
		var sb strings.Builder
		sb.WriteString("SELECT * FROM logs")
		n := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			if j == 0 {
				sb.WriteString(" WHERE ")
			} else {
				sb.WriteString(" AND ")
			}
			sb.WriteString(pool[rng.Intn(len(pool))]())
		}
		runEquivalence(t, db, sb.String())
	}
	mustContainBatched(t, db.db, "SELECT * FROM logs WHERE projid = 'p1'", "Filter", "Scan")
}

// filterConjunctPool covers every kernel shape (col-lit comparisons both
// operand orders, col-col, IN, BETWEEN, IS NULL, OR of kernels) and the
// fallback shapes (NOT, LIKE, arithmetic that can error at eval time).
func filterConjunctPool(rng *rand.Rand) []func() string {
	return []func() string{
		func() string { return fmt.Sprintf("projid = 'p%d'", rng.Intn(4)) },
		func() string { return fmt.Sprintf("'p%d' = projid", rng.Intn(4)) },
		func() string { return fmt.Sprintf("projid != 'p%d'", rng.Intn(4)) },
		func() string {
			return fmt.Sprintf("value_name IN ('acc', '%s')", []string{"recall", "loss"}[rng.Intn(2)])
		},
		func() string { return "value_name NOT IN ('acc', 'f1')" },
		func() string { return fmt.Sprintf("tstamp BETWEEN %d AND %d", rng.Intn(50), rng.Intn(50)) },
		func() string { return fmt.Sprintf("tstamp NOT BETWEEN %d AND %d", rng.Intn(50), rng.Intn(50)) },
		func() string { return fmt.Sprintf("tstamp > %d", rng.Intn(50)) },
		func() string { return fmt.Sprintf("%d >= tstamp", rng.Intn(50)) },
		func() string { return fmt.Sprintf("value > 0.%d", rng.Intn(9)) },
		func() string { return "value > tstamp" },
		func() string { return "value IS NOT NULL" },
		func() string { return "tstamp IS NULL" },
		func() string { return fmt.Sprintf("(projid = 'p1' OR tstamp > %d)", rng.Intn(50)) },
		func() string { return "(value_name = 'acc' OR value IS NULL)" },
		func() string { return fmt.Sprintf("NOT (tstamp = %d)", rng.Intn(50)) },
		func() string { return "projid LIKE 'p%'" },
		func() string { return fmt.Sprintf("value * 2 > 0.%d", rng.Intn(9)) },
		func() string { return "projid = NULL" },
	}
}

func TestVectorizedProjectEquivalenceRandomized(t *testing.T) {
	db := &planEquivDB{db: randomWorkloadDBOpts(t, false)}
	rng := rand.New(rand.NewSource(20260730))
	selects := []string{
		"SELECT projid, value_name, value FROM logs",
		"SELECT value * 2 AS v2, tstamp + 1 AS t1 FROM logs",
		"SELECT upper(projid) AS up, length(value_name) AS ln FROM logs",
		"SELECT coalesce(value, 0.0) AS cv, value IS NULL AS isn FROM logs",
		"SELECT projid + value_name AS joined, abs(value - 1) AS d FROM logs",
		"SELECT DISTINCT projid, value_name FROM logs",
		"SELECT projid FROM logs ORDER BY value_name, tstamp DESC LIMIT 17",
		"SELECT tstamp FROM logs ORDER BY value DESC LIMIT 100 OFFSET 5",
	}
	for i := 0; i < 100; i++ {
		q := selects[rng.Intn(len(selects))]
		if rng.Intn(2) == 0 {
			q = strings.Replace(q, " FROM logs", fmt.Sprintf(" FROM logs WHERE tstamp > %d", rng.Intn(40)), 1)
		}
		runEquivalence(t, db, q)
	}
	mustContainBatched(t, db.db, "SELECT value * 2 AS v2 FROM logs", "Project", "Scan")
}

func TestVectorizedAggregateEquivalenceRandomized(t *testing.T) {
	db := &planEquivDB{db: randomWorkloadDBOpts(t, false)}
	rng := rand.New(rand.NewSource(20260731))
	aggQueries := []string{
		"SELECT value_name, count(*) AS n FROM logs GROUP BY value_name",
		"SELECT projid, count(value) AS cv, sum(value) AS sv, avg(value) AS av FROM logs GROUP BY projid",
		"SELECT value_name, min(value) AS mn, max(value) AS mx FROM logs GROUP BY value_name",
		"SELECT count(*) AS n, avg(value) AS m FROM logs",
		// References no columns at all: the batch scan materializes nothing
		// and only computes the visibility selection (full pruning).
		"SELECT count(*) AS n FROM logs",
		"SELECT projid, value_name, count(*) AS n FROM logs GROUP BY projid, value_name",
		"SELECT tstamp, count(*) AS n FROM logs GROUP BY tstamp HAVING count(*) > 2",
		"SELECT value_name, sum(value * 2) AS s2 FROM logs GROUP BY value_name ORDER BY s2 DESC",
		"SELECT projid, count(*) AS n FROM logs GROUP BY projid ORDER BY n DESC LIMIT 2",
	}
	for i := 0; i < 100; i++ {
		q := aggQueries[rng.Intn(len(aggQueries))]
		if rng.Intn(2) == 0 {
			q = strings.Replace(q, " FROM logs", fmt.Sprintf(" FROM logs WHERE tstamp <= %d", rng.Intn(50)), 1)
		}
		runEquivalence(t, db, q)
	}
	mustContainBatched(t, db.db, "SELECT value_name, count(*) AS n FROM logs GROUP BY value_name", "Aggregate", "Scan")
}

func TestVectorizedJoinProbeEquivalenceRandomized(t *testing.T) {
	db := &planEquivDB{db: randomWorkloadDBOpts(t, false)}
	rng := rand.New(rand.NewSource(20260801))
	for i := 0; i < 150; i++ {
		q := randomQuery(rng)
		if !strings.Contains(q, "JOIN") {
			continue
		}
		runEquivalence(t, db, q)
	}
	if db.checked < 20 {
		t.Fatalf("only %d join queries checked; generator drifted", db.checked)
	}
	mustContainBatched(t, db.db,
		"SELECT l.value, r.vid FROM logs l JOIN runs r ON l.tstamp = r.tstamp WHERE l.projid = 'p1'",
		"HashJoin", "Scan")
}

// mustContainBatched asserts the plan for q marks each named operator as
// vectorized.
func mustContainBatched(t *testing.T, db *relation.Database, q string, ops ...string) {
	t.Helper()
	plan := explain(t, db, q)
	for _, op := range ops {
		found := false
		for _, line := range strings.Split(plan, "\n") {
			if strings.Contains(line, op) && strings.Contains(line, "batched=true") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("plan for %q does not run %s batched:\n%s", q, op, plan)
		}
	}
}
