package sqlparse

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"flordb/internal/relation"
)

// parallelWorkloadDB builds a logs table large enough to clear the parallel
// fan-out threshold, with NULLs, duplicate keys, epoch structure (one epoch
// per chunk of inserts) and tombstones spread across epochs — the state
// shapes the morsel-parallel scan must agree with serial execution on.
func parallelWorkloadDB(t *testing.T) (*relation.Database, int64) {
	t.Helper()
	db := relation.NewDatabase()
	logs, err := db.CreateTable("logs", relation.MustSchema(
		relation.Column{Name: "projid", Type: relation.TText},
		relation.Column{Name: "tstamp", Type: relation.TInt},
		relation.Column{Name: "value_name", Type: relation.TText},
		relation.Column{Name: "value", Type: relation.TFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	projids := []string{"p1", "p2", "p3"}
	names := []string{"acc", "recall", "loss", "f1"}
	var ids []relation.RowID
	rows := 3 * parallelMinRows
	for i := 0; i < rows; i++ {
		val := relation.Null()
		if rng.Intn(10) > 0 {
			val = relation.Float(float64(rng.Intn(100)) / 100)
		}
		ts := relation.Null()
		if rng.Intn(20) > 0 {
			ts = relation.Int(int64(rng.Intn(50)))
		}
		id, err := logs.Insert(relation.Row{
			relation.Text(projids[rng.Intn(len(projids))]),
			ts,
			relation.Text(names[rng.Intn(len(names))]),
			val,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		// Epoch structure: a new committed epoch every ~1000 rows, plus a
		// sprinkle of tombstones per epoch so AS OF pins land mid-history
		// with some versions already dead and others not yet born.
		if i%997 == 0 {
			db.AdvanceEpoch()
			for k := 0; k < 40 && len(ids) > 0; k++ {
				j := rng.Intn(len(ids))
				logs.Delete(ids[j])
				ids[j] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
			}
		}
	}
	db.AdvanceEpoch()
	return db, db.Epoch()
}

// randomParallelQuery emits single-table statements from the shapes the
// parallel executor handles (and a few it must bail out of), optionally
// pinned AS OF a random mid-history epoch.
func randomParallelQuery(rng *rand.Rand, maxEpoch int64) string {
	conjPool := []func() string{
		func() string { return fmt.Sprintf("projid = 'p%d'", rng.Intn(4)) },
		func() string { return fmt.Sprintf("'p%d' = projid", rng.Intn(4)) },
		func() string {
			return fmt.Sprintf("value_name = '%s'", []string{"acc", "recall", "loss", "nope"}[rng.Intn(4)])
		},
		func() string {
			return fmt.Sprintf("value_name IN ('acc', '%s')", []string{"recall", "loss"}[rng.Intn(2)])
		},
		func() string { return fmt.Sprintf("tstamp BETWEEN %d AND %d", rng.Intn(50), rng.Intn(50)) },
		func() string { return fmt.Sprintf("tstamp > %d", rng.Intn(50)) },
		func() string { return fmt.Sprintf("tstamp <= %d", rng.Intn(50)) },
		func() string { return fmt.Sprintf("tstamp = %d", rng.Intn(50)) },
		func() string { return fmt.Sprintf("value > 0.%d", rng.Intn(9)) },
		func() string { return "value IS NOT NULL" },
		func() string { return "tstamp IS NULL" },
		func() string { return fmt.Sprintf("(projid = 'p1' OR tstamp > %d)", rng.Intn(50)) },
		func() string { return fmt.Sprintf("NOT (tstamp = %d)", rng.Intn(50)) },
		// Deferred evaluation error: '-' over (float, text) fails on the
		// first non-NULL pair, at eval time. Parallel pruning and fan-out
		// must surface it exactly when serial does.
		func() string { return "value - value_name = 0" },
	}
	var sb strings.Builder
	agg := false
	switch rng.Intn(4) {
	case 0:
		sb.WriteString("SELECT * FROM logs")
	case 1:
		sb.WriteString("SELECT projid, value_name, value FROM logs")
	case 2:
		sb.WriteString("SELECT upper(projid) AS p, value * 2 AS v2 FROM logs")
	default:
		agg = true
		sb.WriteString("SELECT value_name, count(*) AS n, max(value) AS mx, avg(value) AS mean FROM logs")
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		if i == 0 {
			sb.WriteString(" WHERE ")
		} else {
			sb.WriteString(" AND ")
		}
		sb.WriteString(conjPool[rng.Intn(len(conjPool))]())
	}
	if agg {
		sb.WriteString(" GROUP BY value_name")
		if rng.Intn(3) == 0 {
			sb.WriteString(" HAVING count(*) > 5")
		}
		if rng.Intn(2) == 0 {
			sb.WriteString(" ORDER BY value_name")
		}
	} else if rng.Intn(2) == 0 {
		sb.WriteString(" ORDER BY tstamp, projid, value_name, value")
		if rng.Intn(2) == 0 {
			sb.WriteString(fmt.Sprintf(" LIMIT %d", rng.Intn(40)))
		}
	} else if rng.Intn(4) == 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", rng.Intn(40))) // no ORDER BY: must bail to serial
	}
	if rng.Intn(3) == 0 {
		sb.WriteString(fmt.Sprintf(" AS OF %d", rng.Int63n(maxEpoch+1)))
	}
	return sb.String()
}

// TestConcurrentParallelScanEquivalence is the acceptance property for the
// morsel-driven parallel executor: across randomized predicates,
// projections, aggregates, tombstones, mid-epoch AS OF pins and deferred
// evaluation errors, parallel execution returns the same row multiset as the
// serial reference executor — and the byte-identical ordered result whenever
// the statement has an ORDER BY. Run under -race this also shakes out data
// races between worker pipelines (the race-stress CI job runs it at
// GOMAXPROCS=8).
func TestConcurrentParallelScanEquivalence(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	if old < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	db, maxEpoch := parallelWorkloadDB(t)

	// Sanity: the canonical shape actually takes the parallel plan.
	stmt, err := Parse("EXPLAIN SELECT value_name, count(*) AS n FROM logs WHERE projid = 'p1' GROUP BY value_name")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteOptions(db, stmt, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var plan []string
	for _, r := range res.Rows {
		plan = append(plan, r[0].AsText())
	}
	if !strings.Contains(strings.Join(plan, "\n"), "Gather") {
		t.Fatalf("parallel plan not chosen:\n%s", strings.Join(plan, "\n"))
	}

	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 250; i++ {
		q := randomParallelQuery(rng, maxEpoch)
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("generated unparsable query %q: %v", q, err)
		}
		par, perr := ExecuteOptions(db, stmt, ExecOptions{})
		stmt2, _ := Parse(q)
		ser, serr := ExecuteScan(db, stmt2)
		if (perr == nil) != (serr == nil) {
			t.Fatalf("query %q: parallel err=%v serial err=%v", q, perr, serr)
		}
		if perr != nil {
			continue
		}
		if d := diffResultsApprox(par, ser); d != "" {
			t.Fatalf("query %q: parallel and serial results differ: %s", q, d)
		}
		if strings.Contains(q, "ORDER BY") && !orderedEqual(par, ser) {
			t.Fatalf("query %q: ordered results differ:\n%v\nvs\n%v", q, par.Rows, ser.Rows)
		}
	}
}

// approxKey renders a row for comparison, rounding floats to 9 significant
// digits: per-morsel partial sums merge in a different association order than
// one serial left-to-right sum, so avg/sum results may differ in the last
// couple of ulps. Everything else must match exactly.
func approxKey(r relation.Row) string {
	var sb strings.Builder
	for i, v := range r {
		if i > 0 {
			sb.WriteByte('|')
		}
		if v.Type() == relation.TFloat {
			fmt.Fprintf(&sb, "f:%.9g", v.AsFloat())
		} else {
			fmt.Fprintf(&sb, "%d:%s", v.Type(), v.String())
		}
	}
	return sb.String()
}

// diffResultsApprox is diffResults with float tolerance (see approxKey).
func diffResultsApprox(a, b *Result) string {
	if len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	ka := make([]string, len(a.Rows))
	kb := make([]string, len(b.Rows))
	for i := range a.Rows {
		ka[i], kb[i] = approxKey(a.Rows[i]), approxKey(b.Rows[i])
	}
	sortStrings(ka)
	sortStrings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Sprintf("multiset element %d differs: %s vs %s", i, ka[i], kb[i])
		}
	}
	return ""
}

func sortStrings(s []string) {
	sort.Strings(s)
}

// orderedEqual compares two results row by row in order, with the same float
// tolerance as diffResultsApprox.
func orderedEqual(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if approxKey(a.Rows[i]) != approxKey(b.Rows[i]) {
			return false
		}
	}
	return true
}

// TestParallelScanSerialFallbacks pins the bail-out matrix: statements the
// parallel executor must decline (joins, index-served predicates, small
// tables, LIMIT without ORDER BY, single-worker configs) still execute
// correctly — and tryParallel really did decline, per the plan.
func TestParallelScanSerialFallbacks(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	if old < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	db, _ := parallelWorkloadDB(t)
	logs, _ := db.Table("logs")
	if _, err := logs.CreateHashIndex("projid", "value_name"); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		q    string
		opts ExecOptions
	}{
		// Index path wins: the parallel executor must mirror the planner's
		// access-path choice and stand down.
		{"SELECT value FROM logs WHERE projid = 'p1' AND value_name = 'acc'", ExecOptions{}},
		// LIMIT without ORDER BY: serial stops early.
		{"SELECT projid FROM logs LIMIT 3", ExecOptions{}},
		// Single worker forced.
		{"SELECT projid, count(*) AS n FROM logs GROUP BY projid", ExecOptions{ScanWorkers: 1}},
		// Aggregate with LIMIT: group order is visible, stays serial.
		{"SELECT value_name, count(*) AS n FROM logs GROUP BY value_name LIMIT 2", ExecOptions{}},
	} {
		stmt, err := Parse("EXPLAIN " + tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		res, err := ExecuteOptions(db, stmt, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		var plan []string
		for _, r := range res.Rows {
			plan = append(plan, r[0].AsText())
		}
		if strings.Contains(strings.Join(plan, "\n"), "Gather") {
			t.Fatalf("%s: expected serial plan, got:\n%s", tc.q, strings.Join(plan, "\n"))
		}
		stmt2, _ := Parse(tc.q)
		par, perr := ExecuteOptions(db, stmt2, tc.opts)
		stmt3, _ := Parse(tc.q)
		ser, serr := ExecuteScan(db, stmt3)
		if perr != nil || serr != nil {
			t.Fatalf("%s: errs %v / %v", tc.q, perr, serr)
		}
		if strings.Contains(tc.q, "LIMIT") {
			if len(par.Rows) != len(ser.Rows) {
				t.Fatalf("%s: row counts %d vs %d", tc.q, len(par.Rows), len(ser.Rows))
			}
			continue // LIMIT without full ORDER BY picks arbitrary-but-count-equal rows
		}
		if d := diffResults(par, ser); d != "" {
			t.Fatalf("%s: results differ: %s", tc.q, d)
		}
	}
}

// TestZoneMapPruningSelectiveScan asserts the C17 acceptance criterion that
// a selective predicate over a clustered column decodes under 20% of the
// table's pages, using the process-wide scan counters.
func TestZoneMapPruningSelectiveScan(t *testing.T) {
	db := relation.NewDatabase()
	logs, err := db.CreateTable("logs", relation.MustSchema(
		relation.Column{Name: "tstamp", Type: relation.TInt},
		relation.Column{Name: "value", Type: relation.TFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	const rows = 64 * relation.ZonePageRows
	for i := 0; i < rows; i++ {
		// tstamp is monotonic, so consecutive pages hold disjoint ranges —
		// the clustered shape zone maps prune best.
		if _, err := logs.Insert(relation.Row{relation.Int(int64(i)), relation.Float(float64(i % 100))}); err != nil {
			t.Fatal(err)
		}
	}
	db.AdvanceEpoch()

	q := fmt.Sprintf("SELECT tstamp, value FROM logs WHERE tstamp BETWEEN %d AND %d",
		5*relation.ZonePageRows, 6*relation.ZonePageRows-1)
	p0, d0 := relation.ScanStats()
	res, err := Run(db, q)
	if err != nil {
		t.Fatal(err)
	}
	p1, d1 := relation.ScanStats()
	if len(res.Rows) != relation.ZonePageRows {
		t.Fatalf("got %d rows, want %d", len(res.Rows), relation.ZonePageRows)
	}
	pruned, decoded := p1-p0, d1-d0
	if pruned+decoded == 0 {
		t.Fatal("scan counters did not move")
	}
	if frac := float64(decoded) / float64(pruned+decoded); frac >= 0.2 {
		t.Fatalf("selective scan decoded %.0f%% of pages (pruned=%d decoded=%d), want < 20%%",
			frac*100, pruned, decoded)
	}
}
