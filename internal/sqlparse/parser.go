package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"flordb/internal/relation"
)

// Parse parses a single SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	explain := p.accept(TokKeyword, "EXPLAIN")
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Explain = explain
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	if t.Kind != kind {
		return false
	}
	return text == "" || t.Text == text
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, p.errf("expected %s, found %q", want, p.cur().Text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at byte %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.accept(TokKeyword, "DISTINCT")

	if p.accept(TokSymbol, "*") {
		// SELECT * — empty item list.
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(TokKeyword, "AS") {
				id, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = id.Text
			} else if p.at(TokIdent, "") {
				item.Alias = p.next().Text
			}
			stmt.Items = append(stmt.Items, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}

	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from

	for {
		if p.accept(TokKeyword, "INNER") {
			if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(TokKeyword, "JOIN") {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: tr, On: on})
	}

	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}

	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(TokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}

	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(TokKeyword, "LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
		if p.accept(TokKeyword, "OFFSET") {
			m, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			stmt.Offset = m
		}
	}

	// AS OF <epoch> | AS OF TIMESTAMP '<ts>' — last clause of the statement.
	if p.accept(TokKeyword, "AS") {
		if _, err := p.expect(TokKeyword, "OF"); err != nil {
			return nil, err
		}
		if p.accept(TokKeyword, "TIMESTAMP") {
			t, err := p.expect(TokString, "")
			if err != nil {
				return nil, err
			}
			ts, err := parseSQLTimestamp(t.Text)
			if err != nil {
				return nil, p.errf("AS OF TIMESTAMP: %v", err)
			}
			stmt.AsOf = &AsOfClause{Time: ts, ByTime: true}
		} else {
			n, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, p.errf("AS OF epoch must be non-negative, got %d", n)
			}
			stmt.AsOf = &AsOfClause{Epoch: n}
		}
	}
	return stmt, nil
}

// sqlTimestampLayouts are tried in order by parseSQLTimestamp. Layouts
// without a zone are interpreted as UTC, matching the UTC wall clocks
// commit records carry.
var sqlTimestampLayouts = []string{
	time.RFC3339Nano,
	time.RFC3339,
	"2006-01-02 15:04:05.999999999",
	"2006-01-02 15:04:05",
	"2006-01-02",
}

func parseSQLTimestamp(s string) (time.Time, error) {
	for _, layout := range sqlTimestampLayouts {
		if ts, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return ts, nil
		}
	}
	return time.Time{}, fmt.Errorf("unrecognized timestamp %q (want RFC3339 or '2006-01-02 15:04:05')", s)
}

func (p *parser) parseIntLiteral() (int64, error) {
	t, err := p.expect(TokNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errf("expected integer, found %q", t.Text)
	}
	return n, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	id, err := p.expect(TokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: id.Text}
	if p.at(TokKeyword, "AS") && p.toks[p.i+1].Kind == TokKeyword && p.toks[p.i+1].Text == "OF" {
		// `FROM t AS OF ...` — leave the AS for the statement-level AS OF
		// clause rather than mis-reading OF as an alias.
	} else if p.accept(TokKeyword, "AS") {
		alias, err := p.expect(TokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = alias.Text
	} else if p.at(TokIdent, "") {
		tr.Alias = p.next().Text
	}
	return tr, nil
}

// Expression grammar (precedence climbing):
//   or     := and (OR and)*
//   and    := not (AND not)*
//   not    := NOT not | cmp
//   cmp    := add ((=|!=|<>|<|<=|>|>=|LIKE) add | IS [NOT] NULL
//             | [NOT] IN (list) | [NOT] BETWEEN add AND add)?
//   add    := mul ((+|-) mul)*
//   mul    := unary ((*|/|%) unary)*
//   unary  := - unary | primary
//   primary:= literal | ident[.ident] | func(args) | ( or ) | *

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: inner}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.at(TokSymbol, "") {
		switch p.cur().Text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			op := p.next().Text
			if op == "<>" {
				op = "!="
			}
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	if p.accept(TokKeyword, "LIKE") {
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "LIKE", Left: left, Right: right}, nil
	}
	if p.accept(TokKeyword, "IS") {
		negate := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Negate: negate}, nil
	}
	negate := false
	if p.at(TokKeyword, "NOT") && p.i+1 < len(p.toks) &&
		(p.toks[p.i+1].Text == "IN" || p.toks[p.i+1].Text == "BETWEEN") {
		p.next()
		negate = true
	}
	if p.accept(TokKeyword, "IN") {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{Expr: left, List: list, Negate: negate}, nil
	}
	if p.accept(TokKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Lo: lo, Hi: hi, Negate: negate}, nil
	}
	if negate {
		return nil, p.errf("dangling NOT")
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(TokSymbol, "+") || p.at(TokSymbol, "-") {
		op := p.next().Text
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokSymbol, "*") || p.at(TokSymbol, "/") || p.at(TokSymbol, "%") {
		op := p.next().Text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Expr: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{Value: relation.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &Literal{Value: relation.Int(n)}, nil
	case TokString:
		p.next()
		return &Literal{Value: relation.Text(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Value: relation.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: relation.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: relation.Bool(false)}, nil
		}
		return nil, p.errf("unexpected keyword %q", t.Text)
	case TokSymbol:
		switch t.Text {
		case "(":
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		case "*":
			p.next()
			return &Star{}, nil
		}
		return nil, p.errf("unexpected symbol %q", t.Text)
	case TokIdent:
		p.next()
		// Function call?
		if p.at(TokSymbol, "(") {
			p.next()
			fn := &FuncCall{Name: strings.ToLower(t.Text)}
			if p.accept(TokSymbol, ")") {
				return fn, nil
			}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fn.Args = append(fn.Args, a)
				if !p.accept(TokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return fn, nil
		}
		// Qualified column?
		if p.accept(TokSymbol, ".") {
			col, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Name: col.Text}, nil
		}
		return &ColumnRef{Name: t.Text}, nil
	default:
		return nil, p.errf("unexpected end of input")
	}
}
