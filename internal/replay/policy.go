// Package replay implements FlorDB's record-replay engine (§2 of the
// paper): low-overhead adaptive checkpointing during recording, and
// low-latency selective replay from checkpoints — the mechanism behind
// multiversion hindsight logging.
//
// Recording: the Recorder implements script.FlorHooks. Every flor.log /
// flor.loop / flor.arg call is shredded into the Figure-1 tables and
// appended to the WAL. Inside a flor.checkpointing scope, the outermost
// flor.loop becomes the checkpoint loop: at each iteration boundary the
// CheckpointManager consults a CheckpointPolicy and, when told to, snapshots
// the registered objects into obj_store.
//
// Replay: the Replayer implements the same hook interface but (a) resolves
// flor.arg from the historical args table, (b) skips checkpoint-loop
// iterations that are not needed, restoring object state from the nearest
// checkpoint instead of recomputing it (memoization), and (c) emits log
// records only for the *newly injected* statements, tagged with the original
// version's timestamp and the original loop contexts' ctx_ids.
package replay

import "time"

// CheckpointPolicy decides whether to take a checkpoint at an iteration
// boundary of the checkpoint loop.
type CheckpointPolicy interface {
	// ShouldCheckpoint is consulted after iteration `iter` whose body took
	// bodyDur. lastCkptDur is the duration of the most recent checkpoint
	// (0 before the first).
	ShouldCheckpoint(iter int, bodyDur, lastCkptDur time.Duration) bool
	// Name identifies the policy in benchmarks and logs.
	Name() string
}

// EveryN checkpoints every n-th iteration (n=1 means every iteration).
type EveryN struct{ N int }

// ShouldCheckpoint implements CheckpointPolicy.
func (p EveryN) ShouldCheckpoint(iter int, _, _ time.Duration) bool {
	if p.N <= 1 {
		return true
	}
	return (iter+1)%p.N == 0
}

// Name implements CheckpointPolicy.
func (p EveryN) Name() string {
	if p.N <= 1 {
		return "every-iteration"
	}
	return "every-" + itoa(p.N)
}

// Never disables checkpointing (the "no checkpoints" ablation baseline —
// replay then degenerates to full re-execution).
type Never struct{}

// ShouldCheckpoint implements CheckpointPolicy.
func (Never) ShouldCheckpoint(int, time.Duration, time.Duration) bool { return false }

// Name implements CheckpointPolicy.
func (Never) Name() string { return "never" }

// Adaptive keeps cumulative checkpoint time at most Epsilon of cumulative
// body time — the paper's "low-overhead adaptive checkpointing" [8]. It
// always checkpoints the first iteration (to measure checkpoint cost), then
// checkpoints whenever doing so keeps overhead within budget.
type Adaptive struct {
	// Epsilon is the tolerated overhead fraction, e.g. 0.05 for 5%.
	Epsilon float64

	bodyTotal time.Duration
	ckptTotal time.Duration
}

// ShouldCheckpoint implements CheckpointPolicy.
func (p *Adaptive) ShouldCheckpoint(iter int, bodyDur, lastCkptDur time.Duration) bool {
	p.bodyTotal += bodyDur
	if iter == 0 {
		return true
	}
	est := lastCkptDur
	if est == 0 {
		est = time.Microsecond
	}
	eps := p.Epsilon
	if eps <= 0 {
		eps = 0.05
	}
	if float64(p.ckptTotal+est) <= eps*float64(p.bodyTotal) {
		return true
	}
	return false
}

// RecordCheckpointCost feeds actual checkpoint durations back into the
// budget. The CheckpointManager calls this after each snapshot.
func (p *Adaptive) RecordCheckpointCost(d time.Duration) { p.ckptTotal += d }

// Name implements CheckpointPolicy.
func (p *Adaptive) Name() string { return "adaptive" }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
