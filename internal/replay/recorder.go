package replay

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"flordb/internal/record"
	"flordb/internal/script"
)

// Recorder implements script.FlorHooks for recording executions: the
// "record" half of record-replay. All flor.* calls are shredded into the
// Figure-1 tables and appended to the WAL; the checkpoint loop is snapshotted
// per the manager's policy.
type Recorder struct {
	Ctx  *Context
	Ckpt *CheckpointManager
	// Args maps command-line overrides (name -> raw text); flor.arg consults
	// it before falling back to the default.
	Args map[string]string
	// OnCommit is invoked by flor.commit(); the owning session supplies
	// version-control integration.
	OnCommit func() error

	ctxCounter int64
	ctxStack   []int64
	loopDepth  int
}

// NewRecorder builds a recorder over a context.
func NewRecorder(ctx *Context, ckpt *CheckpointManager) *Recorder {
	if ckpt == nil {
		ckpt = NewCheckpointManager(nil)
	}
	return &Recorder{Ctx: ctx, Ckpt: ckpt}
}

func (r *Recorder) curCtx() int64 {
	if len(r.ctxStack) == 0 {
		return 0
	}
	return r.ctxStack[len(r.ctxStack)-1]
}

func (r *Recorder) nextCtx() int64 { return atomic.AddInt64(&r.ctxCounter, 1) }

// SetCtxCounter fast-forwards the ctx allocator (used after recovery so new
// ctx_ids don't collide with historical ones).
func (r *Recorder) SetCtxCounter(n int64) { atomic.StoreInt64(&r.ctxCounter, n) }

// Log implements script.FlorHooks.
func (r *Recorder) Log(name string, v script.Value) (script.Value, error) {
	text, vt := formatScriptValue(v)
	rec := &record.LogRecord{
		Kind: record.KindLog, ProjID: r.Ctx.ProjID, Tstamp: r.Ctx.TstampNow(),
		Filename: r.Ctx.Filename, CtxID: r.curCtx(), ValueName: name,
		Value: text, ValueType: vt, Wall: time.Now().UTC(),
	}
	if err := r.Ctx.Tables.Apply(rec); err != nil {
		return nil, err
	}
	if r.Ctx.WAL != nil {
		if err := r.Ctx.WAL.Append(rec); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// Arg implements script.FlorHooks: resolve from CLI overrides or default,
// coerce to the default's type, and record the resolution.
func (r *Recorder) Arg(name string, def script.Value) (script.Value, error) {
	resolved := def
	if raw, ok := r.Args[name]; ok {
		v, err := coerceArg(raw, def)
		if err != nil {
			return nil, fmt.Errorf("flor.arg %q: %w", name, err)
		}
		resolved = v
	}
	text, _ := formatScriptValue(resolved)
	rec := &record.ArgRecord{
		Kind: record.KindArg, ProjID: r.Ctx.ProjID, Tstamp: r.Ctx.TstampNow(),
		Filename: r.Ctx.Filename, Name: name, Value: text,
	}
	if err := r.Ctx.Tables.Apply(rec); err != nil {
		return nil, err
	}
	if r.Ctx.WAL != nil {
		if err := r.Ctx.WAL.Append(rec); err != nil {
			return nil, err
		}
	}
	return resolved, nil
}

// LoopBegin implements script.FlorHooks.
func (r *Recorder) LoopBegin(name string, vals []script.Value) (script.LoopSession, error) {
	isCkptLoop := r.Ckpt.ClaimLoop(name)
	r.loopDepth++
	return &recordSession{r: r, name: name, isCkptLoop: isCkptLoop}, nil
}

// IterationBegin implements script.FlorHooks (flor.iteration context).
func (r *Recorder) IterationBegin(name string, val script.Value) error {
	ctx := r.nextCtx()
	text, _ := formatScriptValue(val)
	rec := &record.LoopRecord{
		Kind: record.KindLoop, ProjID: r.Ctx.ProjID, Tstamp: r.Ctx.TstampNow(),
		Filename: r.Ctx.Filename, CtxID: ctx, ParentCtxID: r.curCtx(),
		LoopName: name, LoopIter: -1, IterValue: text, Wall: time.Now().UTC(),
	}
	if err := r.Ctx.Tables.Apply(rec); err != nil {
		return err
	}
	if r.Ctx.WAL != nil {
		if err := r.Ctx.WAL.Append(rec); err != nil {
			return err
		}
	}
	r.ctxStack = append(r.ctxStack, ctx)
	return nil
}

// IterationEnd implements script.FlorHooks.
func (r *Recorder) IterationEnd() error {
	if len(r.ctxStack) > 0 {
		r.ctxStack = r.ctxStack[:len(r.ctxStack)-1]
	}
	return nil
}

// CheckpointingBegin implements script.FlorHooks.
func (r *Recorder) CheckpointingBegin(objs map[string]script.Value) error {
	return r.Ckpt.Begin(objs)
}

// CheckpointingEnd implements script.FlorHooks.
func (r *Recorder) CheckpointingEnd() error {
	r.Ckpt.End()
	return nil
}

// Commit implements script.FlorHooks.
func (r *Recorder) Commit() error {
	if r.OnCommit != nil {
		return r.OnCommit()
	}
	if r.Ctx.WAL != nil {
		rec := &record.CommitRecord{Kind: record.KindCommit, ProjID: r.Ctx.ProjID, Tstamp: r.Ctx.TstampNow(), Wall: time.Now().UTC()}
		return r.Ctx.WAL.AppendCommit(rec)
	}
	return nil
}

// recordSession is the per-loop recording session.
type recordSession struct {
	r          *Recorder
	name       string
	isCkptLoop bool
	bodyStart  time.Time
	curIterCtx int64
}

// Decide implements script.LoopSession: always run; allocate the iteration's
// ctx_id and write the loops row.
func (s *recordSession) Decide(i int, v script.Value) (bool, error) {
	ctx := s.r.nextCtx()
	text, _ := formatScriptValue(v)
	rec := &record.LoopRecord{
		Kind: record.KindLoop, ProjID: s.r.Ctx.ProjID, Tstamp: s.r.Ctx.TstampNow(),
		Filename: s.r.Ctx.Filename, CtxID: ctx, ParentCtxID: s.r.curCtx(),
		LoopName: s.name, LoopIter: int64(i), IterValue: text, Wall: time.Now().UTC(),
	}
	if err := s.r.Ctx.Tables.Apply(rec); err != nil {
		return false, err
	}
	if s.r.Ctx.WAL != nil {
		if err := s.r.Ctx.WAL.Append(rec); err != nil {
			return false, err
		}
	}
	s.r.ctxStack = append(s.r.ctxStack, ctx)
	s.curIterCtx = ctx
	s.bodyStart = time.Now()
	return true, nil
}

// PostIter implements script.LoopSession: pop the iteration context and
// maybe checkpoint.
func (s *recordSession) PostIter(i int, _ script.Value) error {
	if len(s.r.ctxStack) > 0 {
		s.r.ctxStack = s.r.ctxStack[:len(s.r.ctxStack)-1]
	}
	if s.isCkptLoop {
		_, err := s.r.Ckpt.MaybeCheckpoint(s.r.Ctx, s.name, i, s.curIterCtx, time.Since(s.bodyStart))
		return err
	}
	return nil
}

// End implements script.LoopSession.
func (s *recordSession) End() error {
	s.r.loopDepth--
	if s.isCkptLoop {
		s.r.Ckpt.ReleaseLoop(s.name)
	}
	return nil
}

// formatScriptValue converts a Flow value into the logs.value text column
// plus type tag.
func formatScriptValue(v script.Value) (string, record.ValueType) {
	switch x := v.(type) {
	case nil:
		return "", record.VTText
	case bool:
		if x {
			return "true", record.VTBool
		}
		return "false", record.VTBool
	case int64:
		return strconv.FormatInt(x, 10), record.VTInt
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), record.VTFloat
	case string:
		return x, record.VTText
	default:
		return script.Repr(v), record.VTText
	}
}

// coerceArg parses a raw CLI string into the type of the default value.
func coerceArg(raw string, def script.Value) (script.Value, error) {
	switch def.(type) {
	case int64:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expected integer, got %q", raw)
		}
		return n, nil
	case float64:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("expected float, got %q", raw)
		}
		return f, nil
	case bool:
		switch raw {
		case "true", "1":
			return true, nil
		case "false", "0":
			return false, nil
		}
		return nil, fmt.Errorf("expected bool, got %q", raw)
	default:
		return raw, nil
	}
}
