package replay

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"flordb/internal/record"
	"flordb/internal/script"
	"flordb/internal/storage"
)

// ckptName builds the obj_store value_name for a checkpoint of the named
// loop at the given iteration.
func ckptName(loopName string, iter int) string {
	return fmt.Sprintf("ckpt::%s::%d", loopName, iter)
}

// CkptBlobName exposes the obj_store naming convention for checkpoints so
// other components (model registry queries, the CLI) can load them.
func CkptBlobName(loopName string, iter int) string { return ckptName(loopName, iter) }

// snapshotEntry is one checkpointed object in the serialized blob.
type snapshotEntry struct {
	Name string `json:"name"`
	Data string `json:"data"` // base64 of the object's Snapshot()
}

// CheckpointManager serializes and restores the objects registered by a
// flor.checkpointing scope.
type CheckpointManager struct {
	Policy CheckpointPolicy

	objs     map[string]script.Value
	loopName string // checkpoint loop, assigned at first LoopBegin in scope
	active   bool

	lastCkptDur time.Duration
	// Taken records which iterations were checkpointed (for tests/benches).
	Taken []int
}

// NewCheckpointManager creates a manager with the given policy (nil means
// adaptive with 5% budget).
func NewCheckpointManager(policy CheckpointPolicy) *CheckpointManager {
	if policy == nil {
		policy = &Adaptive{Epsilon: 0.05}
	}
	return &CheckpointManager{Policy: policy}
}

// Begin enters a checkpointing scope with the given objects. Objects must
// implement script.Snapshotter.
func (m *CheckpointManager) Begin(objs map[string]script.Value) error {
	for name, v := range objs {
		if _, ok := v.(script.Snapshotter); !ok {
			return fmt.Errorf("replay: checkpointing object %q (%T) does not implement Snapshotter", name, v)
		}
	}
	m.objs = objs
	m.active = true
	m.loopName = ""
	return nil
}

// End leaves the checkpointing scope.
func (m *CheckpointManager) End() {
	m.active = false
	m.objs = nil
	m.loopName = ""
}

// Active reports whether a scope is open.
func (m *CheckpointManager) Active() bool { return m.active }

// ClaimLoop assigns the checkpoint loop if unassigned; it returns true when
// the named loop is (or becomes) the checkpoint loop.
func (m *CheckpointManager) ClaimLoop(name string) bool {
	if !m.active {
		return false
	}
	if m.loopName == "" {
		m.loopName = name
	}
	return m.loopName == name
}

// ReleaseLoop clears the loop claim when the checkpoint loop ends.
func (m *CheckpointManager) ReleaseLoop(name string) {
	if m.loopName == name {
		m.loopName = ""
	}
}

// Serialize captures the current state of all registered objects into one
// blob.
func (m *CheckpointManager) Serialize() ([]byte, error) {
	entries := make([]snapshotEntry, 0, len(m.objs))
	for name, v := range m.objs {
		snap := v.(script.Snapshotter)
		data, err := snap.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("replay: snapshot %q: %w", name, err)
		}
		entries = append(entries, snapshotEntry{Name: name, Data: base64.StdEncoding.EncodeToString(data)})
	}
	// Deterministic order for stable blobs.
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			if entries[j].Name < entries[i].Name {
				entries[i], entries[j] = entries[j], entries[i]
			}
		}
	}
	return json.Marshal(entries)
}

// RestoreObjects rehydrates objects from a serialized checkpoint blob.
// Objects present in the blob but not requested are ignored; requested
// objects missing from the blob are an error.
func RestoreObjects(blob []byte, objs map[string]script.Value) error {
	return (&CheckpointManager{}).RestoreInto(blob, objs)
}

// RestoreInto rehydrates registered objects from a serialized blob. Objects
// present in the blob but not registered are ignored; registered objects
// missing from the blob are an error.
func (m *CheckpointManager) RestoreInto(blob []byte, objs map[string]script.Value) error {
	var entries []snapshotEntry
	if err := json.Unmarshal(blob, &entries); err != nil {
		return fmt.Errorf("replay: decode checkpoint: %w", err)
	}
	byName := make(map[string]snapshotEntry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	for name, v := range objs {
		e, ok := byName[name]
		if !ok {
			return fmt.Errorf("replay: checkpoint missing object %q", name)
		}
		data, err := base64.StdEncoding.DecodeString(e.Data)
		if err != nil {
			return fmt.Errorf("replay: checkpoint %q: %w", name, err)
		}
		snap, ok := v.(script.Snapshotter)
		if !ok {
			return fmt.Errorf("replay: object %q is not a Snapshotter", name)
		}
		if err := snap.Restore(data); err != nil {
			return fmt.Errorf("replay: restore %q: %w", name, err)
		}
	}
	return nil
}

// MaybeCheckpoint consults the policy and, when told to, snapshots into the
// tables (and WAL/blob store when present). Returns whether a checkpoint was
// taken.
func (m *CheckpointManager) MaybeCheckpoint(ctx *Context, loopName string, iter int, ctxID int64, bodyDur time.Duration) (bool, error) {
	if !m.active || m.loopName != loopName {
		return false, nil
	}
	if !m.Policy.ShouldCheckpoint(iter, bodyDur, m.lastCkptDur) {
		return false, nil
	}
	start := time.Now()
	blob, err := m.Serialize()
	if err != nil {
		return false, err
	}
	name := ckptName(loopName, iter)
	if err := ctx.Tables.PutBlob(ctx.ProjID, ctx.TstampNow(), ctx.Filename, ctxID, name, blob); err != nil {
		return false, err
	}
	if ctx.Blobs != nil {
		key, err := ctx.Blobs.Put(blob)
		if err != nil {
			return false, err
		}
		if ctx.WAL != nil {
			rec := &record.CkptRecord{
				Kind: record.KindCkpt, ProjID: ctx.ProjID, Tstamp: ctx.TstampNow(),
				Filename: ctx.Filename, CtxID: ctxID, Name: name, BlobKey: key,
			}
			if err := ctx.WAL.Append(rec); err != nil {
				return false, err
			}
		}
	}
	m.lastCkptDur = time.Since(start)
	if ad, ok := m.Policy.(*Adaptive); ok {
		ad.RecordCheckpointCost(m.lastCkptDur)
	}
	m.Taken = append(m.Taken, iter)
	return true, nil
}

// Context carries the shared state of one FlorDB execution (recording or
// replay): identity, destination tables, and durability sinks.
type Context struct {
	ProjID   string
	Filename string
	// Tstamp is the logical timestamp records are stamped with. The owning
	// session advances it on commit, possibly while other goroutines record;
	// concurrent readers must go through TstampNow/SetTstamp.
	Tstamp int64
	Tables *record.Tables
	WAL    *storage.WAL       // optional
	Blobs  *storage.BlobStore // optional
}

// TstampNow atomically reads the logical timestamp.
func (c *Context) TstampNow() int64 { return atomic.LoadInt64(&c.Tstamp) }

// SetTstamp atomically advances the logical timestamp.
func (c *Context) SetTstamp(ts int64) { atomic.StoreInt64(&c.Tstamp, ts) }
