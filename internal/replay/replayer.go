package replay

import (
	"strconv"
	"sync/atomic"
	"time"

	"flordb/internal/record"
	"flordb/internal/relation"
	"flordb/internal/script"
)

// ReplayStats counts what a replay actually did — the quantities behind the
// paper's claim that hindsight replay is far cheaper than re-execution.
type ReplayStats struct {
	IterationsRun     int
	IterationsSkipped int
	InnerLoopsSkipped int
	Restores          int
	LogsEmitted       int
	LogsSuppressed    int
}

// Replayer implements script.FlorHooks for hindsight replay of one
// historical version: flor.arg resolves from the recorded args, the
// checkpoint loop skips iterations not needed for the new statements
// (restoring object state from checkpoints), and only the newly injected
// value names are recorded.
type Replayer struct {
	Ctx  *Context // Tstamp is the HISTORICAL version's timestamp
	Ckpt *CheckpointManager

	// NewNames restricts which flor.log names are recorded; nil records all
	// (used when replaying a version that never ran).
	NewNames map[string]bool
	// Targets restricts which checkpoint-loop iterations are materialized;
	// nil means all iterations.
	Targets map[int]bool
	// InnerNeeded forces FULL re-execution of target iterations (set when
	// an injected statement lives inside an inner loop; otherwise COARSE
	// mode restores the iteration's checkpoint and skips the inner loop).
	InnerNeeded bool

	Stats ReplayStats

	argLookup map[string]string
	ctxLookup map[string]int64
	ctxStack  []int64

	outerActive  bool
	outerIter    int
	skipInner    bool
	lastRestored int

	// ctxCounter allocates fresh ctx ids for loop iterations that have no
	// recorded row (e.g. replaying a version that was never recorded).
	ctxCounter *int64
}

// NewReplayer builds a replayer for the version at ctx.Tstamp, loading the
// historical args and loop contexts from the tables.
func NewReplayer(ctx *Context, ctxCounter *int64) *Replayer {
	r := &Replayer{
		Ctx:          ctx,
		Ckpt:         NewCheckpointManager(Never{}), // no re-checkpointing during replay
		argLookup:    make(map[string]string),
		ctxLookup:    make(map[string]int64),
		lastRestored: -1,
		ctxCounter:   ctxCounter,
	}
	// Historical flor.arg resolutions.
	ctx.Tables.Args.Scan(func(_ relation.RowID, row relation.Row) bool {
		if row[0].AsText() == ctx.ProjID && row[1].AsInt() == ctx.TstampNow() {
			r.argLookup[row[3].AsText()] = row[4].AsText()
		}
		return true
	})
	// Historical loop contexts: (parent_ctx, loop_name, iteration) -> ctx_id,
	// plus value-keyed entries for flor.iteration contexts. The parent ctx is
	// part of the key because inner loops restart per outer iteration (every
	// document has a page 0).
	ctx.Tables.Loops.Scan(func(_ relation.RowID, row relation.Row) bool {
		if row[0].AsText() == ctx.ProjID && row[1].AsInt() == ctx.TstampNow() {
			name := row[5].AsText()
			iter := row[6].AsInt()
			ctxID := row[3].AsInt()
			parent := row[4].AsInt()
			r.ctxLookup[loopKey(parent, name, iter)] = ctxID
			if iter < 0 {
				r.ctxLookup[iterKey(parent, name, row[7].AsText())] = ctxID
			}
		}
		return true
	})
	return r
}

func loopKey(parent int64, name string, iter int64) string {
	return strconv.FormatInt(parent, 10) + "\x1f" + name + "\x1f" + strconv.FormatInt(iter, 10)
}

func iterKey(parent int64, name, value string) string {
	return strconv.FormatInt(parent, 10) + "\x1f" + name + "\x1fval:" + value
}

func (r *Replayer) curCtx() int64 {
	if len(r.ctxStack) == 0 {
		return 0
	}
	return r.ctxStack[len(r.ctxStack)-1]
}

func (r *Replayer) allocCtx() int64 { return atomic.AddInt64(r.ctxCounter, 1) }

// resolveCtx finds the recorded ctx_id for a loop iteration or allocates a
// fresh one (writing the loops row so the new provenance is queryable).
func (r *Replayer) resolveCtx(loopName string, iter int64, val script.Value) (int64, error) {
	if id, ok := r.ctxLookup[loopKey(r.curCtx(), loopName, iter)]; ok {
		return id, nil
	}
	id := r.allocCtx()
	text, _ := formatScriptValue(val)
	rec := &record.LoopRecord{
		Kind: record.KindLoop, ProjID: r.Ctx.ProjID, Tstamp: r.Ctx.TstampNow(),
		Filename: r.Ctx.Filename, CtxID: id, ParentCtxID: r.curCtx(),
		LoopName: loopName, LoopIter: iter, IterValue: text, Wall: time.Now().UTC(),
	}
	if err := r.Ctx.Tables.Apply(rec); err != nil {
		return 0, err
	}
	if r.Ctx.WAL != nil {
		if err := r.Ctx.WAL.Append(rec); err != nil {
			return 0, err
		}
	}
	r.ctxLookup[loopKey(r.curCtx(), loopName, iter)] = id
	return id, nil
}

// Log implements script.FlorHooks: record only newly injected names, with
// the historical timestamp and the original loop context.
func (r *Replayer) Log(name string, v script.Value) (script.Value, error) {
	if r.NewNames != nil && !r.NewNames[name] {
		r.Stats.LogsSuppressed++
		return v, nil
	}
	text, vt := formatScriptValue(v)
	rec := &record.LogRecord{
		Kind: record.KindLog, ProjID: r.Ctx.ProjID, Tstamp: r.Ctx.TstampNow(),
		Filename: r.Ctx.Filename, CtxID: r.curCtx(), ValueName: name,
		Value: text, ValueType: vt, Wall: time.Now().UTC(),
	}
	if err := r.Ctx.Tables.Apply(rec); err != nil {
		return nil, err
	}
	if r.Ctx.WAL != nil {
		if err := r.Ctx.WAL.Append(rec); err != nil {
			return nil, err
		}
	}
	r.Stats.LogsEmitted++
	return v, nil
}

// Arg implements script.FlorHooks: return the historical value.
func (r *Replayer) Arg(name string, def script.Value) (script.Value, error) {
	raw, ok := r.argLookup[name]
	if !ok {
		return def, nil
	}
	v, err := coerceArg(raw, def)
	if err != nil {
		// Historical value of a different type than today's default: fall
		// back to the raw text.
		return raw, nil
	}
	return v, nil
}

// LoopBegin implements script.FlorHooks.
func (r *Replayer) LoopBegin(name string, vals []script.Value) (script.LoopSession, error) {
	if r.Ckpt.Active() && r.Ckpt.ClaimLoop(name) && !r.outerActive {
		// This is the checkpoint loop: plan which iterations run.
		plan := r.planOuter(name, len(vals))
		return &replayOuterSession{r: r, name: name, plan: plan}, nil
	}
	if r.outerActive && r.skipInner {
		if blob, ok := r.ckptBlob(r.ckptLoopName(), r.outerIter); ok {
			return &replaySkipInnerSession{r: r, blob: blob}, nil
		}
	}
	return &replayRunAllSession{r: r, name: name}, nil
}

func (r *Replayer) ckptLoopName() string { return r.Ckpt.loopName }

func (r *Replayer) ckptBlob(loopName string, iter int) ([]byte, bool) {
	return r.Ctx.Tables.GetBlobExact(r.Ctx.ProjID, ckptName(loopName, iter), r.Ctx.TstampNow())
}

// outerPlan describes, per iteration, whether it runs and in which mode.
type outerPlan struct {
	run    []bool
	coarse []bool // run with inner-loop skip + restore ckpt[i]
}

// planOuter computes the run set: COARSE targets run alone (their own
// checkpoint restores end-of-iteration state); FULL targets run together
// with the gap iterations back to the nearest prior checkpoint.
func (r *Replayer) planOuter(loopName string, n int) outerPlan {
	plan := outerPlan{run: make([]bool, n), coarse: make([]bool, n)}
	hasCkpt := make([]bool, n)
	for i := 0; i < n; i++ {
		_, hasCkpt[i] = r.ckptBlob(loopName, i)
	}
	for t := 0; t < n; t++ {
		if r.Targets != nil && !r.Targets[t] {
			continue
		}
		if !r.InnerNeeded && hasCkpt[t] {
			plan.run[t] = true
			plan.coarse[t] = true
			continue
		}
		// FULL: run from the nearest checkpoint strictly before t.
		start := 0
		for j := t - 1; j >= 0; j-- {
			if hasCkpt[j] {
				start = j + 1
				break
			}
		}
		for j := start; j <= t; j++ {
			if !plan.coarse[j] {
				plan.run[j] = true
			}
			// A gap iteration that was planned COARSE must be upgraded to
			// FULL so it recomputes state for the target after it.
			if j < t && plan.coarse[j] {
				plan.coarse[j] = false
				plan.run[j] = true
			}
		}
	}
	return plan
}

// IterationBegin implements script.FlorHooks: reuse the recorded ctx for the
// same (name, value) pair or create a new one.
func (r *Replayer) IterationBegin(name string, val script.Value) error {
	text, _ := formatScriptValue(val)
	id, ok := r.ctxLookup[iterKey(r.curCtx(), name, text)]
	if !ok {
		id = r.allocCtx()
		rec := &record.LoopRecord{
			Kind: record.KindLoop, ProjID: r.Ctx.ProjID, Tstamp: r.Ctx.TstampNow(),
			Filename: r.Ctx.Filename, CtxID: id, ParentCtxID: r.curCtx(),
			LoopName: name, LoopIter: -1, IterValue: text, Wall: time.Now().UTC(),
		}
		if err := r.Ctx.Tables.Apply(rec); err != nil {
			return err
		}
		r.ctxLookup[iterKey(r.curCtx(), name, text)] = id
	}
	r.ctxStack = append(r.ctxStack, id)
	return nil
}

// IterationEnd implements script.FlorHooks.
func (r *Replayer) IterationEnd() error {
	if len(r.ctxStack) > 0 {
		r.ctxStack = r.ctxStack[:len(r.ctxStack)-1]
	}
	return nil
}

// CheckpointingBegin implements script.FlorHooks: register objects for
// restore (no new checkpoints are taken during replay).
func (r *Replayer) CheckpointingBegin(objs map[string]script.Value) error {
	return r.Ckpt.Begin(objs)
}

// CheckpointingEnd implements script.FlorHooks.
func (r *Replayer) CheckpointingEnd() error {
	r.Ckpt.End()
	return nil
}

// Commit implements script.FlorHooks: commits are not re-executed during
// replay (the version already exists).
func (r *Replayer) Commit() error { return nil }

// ---------- loop sessions ----------

// replayOuterSession drives the checkpoint loop with skip/restore logic.
type replayOuterSession struct {
	r    *Replayer
	name string
	plan outerPlan
}

// Decide implements script.LoopSession.
func (s *replayOuterSession) Decide(i int, v script.Value) (bool, error) {
	r := s.r
	if i >= len(s.plan.run) || !s.plan.run[i] {
		r.Stats.IterationsSkipped++
		return false, nil
	}
	// FULL iterations need end-of-(i-1) state.
	if !s.plan.coarse[i] && i > 0 && r.lastRestored != i-1 {
		if blob, ok := r.ckptBlob(s.name, i-1); ok {
			if err := r.Ckpt.RestoreInto(blob, r.Ckpt.objs); err != nil {
				return false, err
			}
			r.Stats.Restores++
			r.lastRestored = i - 1
		}
	}
	ctxID, err := r.resolveCtx(s.name, int64(i), v)
	if err != nil {
		return false, err
	}
	r.ctxStack = append(r.ctxStack, ctxID)
	r.outerActive = true
	r.outerIter = i
	r.skipInner = s.plan.coarse[i]
	r.Stats.IterationsRun++
	return true, nil
}

// PostIter implements script.LoopSession.
func (s *replayOuterSession) PostIter(i int, _ script.Value) error {
	r := s.r
	if len(r.ctxStack) > 0 {
		r.ctxStack = r.ctxStack[:len(r.ctxStack)-1]
	}
	r.outerActive = false
	r.skipInner = false
	r.lastRestored = i
	return nil
}

// End implements script.LoopSession.
func (s *replayOuterSession) End() error {
	s.r.outerActive = false
	s.r.skipInner = false
	s.r.Ckpt.ReleaseLoop(s.name)
	return nil
}

// replaySkipInnerSession skips every iteration of an inner loop and restores
// the enclosing iteration's checkpoint at the end — COARSE-mode replay.
type replaySkipInnerSession struct {
	r    *Replayer
	blob []byte
}

// Decide implements script.LoopSession.
func (s *replaySkipInnerSession) Decide(int, script.Value) (bool, error) { return false, nil }

// PostIter implements script.LoopSession.
func (s *replaySkipInnerSession) PostIter(int, script.Value) error { return nil }

// End implements script.LoopSession: the restore point.
func (s *replaySkipInnerSession) End() error {
	if err := s.r.Ckpt.RestoreInto(s.blob, s.r.Ckpt.objs); err != nil {
		return err
	}
	s.r.Stats.InnerLoopsSkipped++
	s.r.Stats.Restores++
	return nil
}

// replayRunAllSession runs a non-checkpoint loop in full, mapping iterations
// onto their recorded contexts.
type replayRunAllSession struct {
	r    *Replayer
	name string
}

// Decide implements script.LoopSession.
func (s *replayRunAllSession) Decide(i int, v script.Value) (bool, error) {
	ctxID, err := s.r.resolveCtx(s.name, int64(i), v)
	if err != nil {
		return false, err
	}
	s.r.ctxStack = append(s.r.ctxStack, ctxID)
	return true, nil
}

// PostIter implements script.LoopSession.
func (s *replayRunAllSession) PostIter(int, script.Value) error {
	if len(s.r.ctxStack) > 0 {
		s.r.ctxStack = s.r.ctxStack[:len(s.r.ctxStack)-1]
	}
	return nil
}

// End implements script.LoopSession.
func (s *replayRunAllSession) End() error { return nil }

// MaxCtxID scans the loops table for the highest allocated ctx_id, so replay
// and recovery can continue the sequence without collisions.
func MaxCtxID(tables *record.Tables) int64 {
	var maxID int64
	tables.Loops.Scan(func(_ relation.RowID, row relation.Row) bool {
		if id := row[3].AsInt(); id > maxID {
			maxID = id
		}
		return true
	})
	return maxID
}
