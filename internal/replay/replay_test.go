package replay

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"flordb/internal/record"
	"flordb/internal/relation"
	"flordb/internal/script"
	"flordb/internal/vcs"
)

// toyModel is a Snapshotter whose state is the sum of all training inputs —
// restore-vs-recompute equivalence is exactly checkable.
type toyModel struct {
	Sum   float64 `json:"sum"`
	Steps int     `json:"steps"`
}

func (m *toyModel) Snapshot() ([]byte, error) { return json.Marshal(m) }
func (m *toyModel) Restore(b []byte) error    { return json.Unmarshal(b, m) }

func newTestTables(t *testing.T) *record.Tables {
	t.Helper()
	db := relation.NewDatabase()
	tables, err := record.CreateTables(db)
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

// trainSrc is a Figure-5-shaped training script.
const trainSrc = `
epochs = flor.arg("epochs", 4)
net = make_model()
with flor.checkpointing(model=net) {
    for epoch in flor.loop("epoch", range(epochs)) {
        for step in flor.loop("step", range(3)) {
            train_step(net, epoch * 3 + step)
        }
        acc = eval_model(net)
        flor.log("acc", acc)
    }
}
`

func setupHosts(model *toyModel) func(in *script.Interp) {
	return func(in *script.Interp) {
		in.RegisterHost("make_model", func([]script.Value, map[string]script.Value) (script.Value, error) {
			model.Sum = 0
			model.Steps = 0
			return model, nil
		})
		in.RegisterHost("train_step", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
			m := args[0].(*toyModel)
			x := float64(args[1].(int64))
			m.Sum += x
			m.Steps++
			return nil, nil
		})
		in.RegisterHost("eval_model", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
			m := args[0].(*toyModel)
			return m.Sum, nil
		})
	}
}

// recordRun executes trainSrc with a Recorder at the given tstamp.
func recordRun(t *testing.T, tables *record.Tables, tstamp int64, policy CheckpointPolicy, src string) *CheckpointManager {
	t.Helper()
	ctx := &Context{ProjID: "p", Filename: "train.flow", Tstamp: tstamp, Tables: tables}
	ckpt := NewCheckpointManager(policy)
	rec := NewRecorder(ctx, ckpt)
	rec.SetCtxCounter(MaxCtxID(tables))
	model := &toyModel{}
	in := script.NewInterp(rec, nil)
	setupHosts(model)(in)
	f, err := script.Parse("train.flow", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(f); err != nil {
		t.Fatal(err)
	}
	return ckpt
}

func TestRecorderPopulatesFigure1Tables(t *testing.T) {
	tables := newTestTables(t)
	recordRun(t, tables, 1, EveryN{N: 1}, trainSrc)

	// 4 epochs x (1 epoch row + 3 step rows) = 16 loops rows.
	if tables.Loops.Len() != 16 {
		t.Fatalf("loops rows = %d", tables.Loops.Len())
	}
	// 4 acc logs.
	if tables.Logs.Len() != 4 {
		t.Fatalf("logs rows = %d", tables.Logs.Len())
	}
	// 1 arg.
	if tables.Args.Len() != 1 {
		t.Fatalf("args rows = %d", tables.Args.Len())
	}
	// Every-iteration policy: 4 checkpoints in obj_store.
	if tables.ObjStore.Len() != 4 {
		t.Fatalf("obj_store rows = %d", tables.ObjStore.Len())
	}
	// ctx nesting: every step row's parent is an epoch row.
	epochCtx := map[int64]bool{}
	for _, row := range tables.Loops.Rows() {
		if row[5].AsText() == "epoch" {
			epochCtx[row[3].AsInt()] = true
		}
	}
	for _, row := range tables.Loops.Rows() {
		if row[5].AsText() == "step" && !epochCtx[row[4].AsInt()] {
			t.Fatalf("step row parent %d is not an epoch ctx", row[4].AsInt())
		}
	}
	// Log rows carry the epoch ctx (logged after the inner loop).
	for _, row := range tables.Logs.Rows() {
		if !epochCtx[row[3].AsInt()] {
			t.Fatalf("log ctx %d not an epoch ctx", row[3].AsInt())
		}
	}
}

func TestCheckpointPolicies(t *testing.T) {
	tables := newTestTables(t)
	ck := recordRun(t, tables, 1, EveryN{N: 2}, trainSrc)
	if len(ck.Taken) != 2 { // iterations 1 and 3
		t.Fatalf("every-2 checkpoints: %v", ck.Taken)
	}
	tables2 := newTestTables(t)
	ck2 := recordRun(t, tables2, 1, Never{}, trainSrc)
	if len(ck2.Taken) != 0 {
		t.Fatalf("never policy took checkpoints: %v", ck2.Taken)
	}
}

func TestAdaptivePolicyBudget(t *testing.T) {
	p := &Adaptive{Epsilon: 0.10}
	// First iteration always checkpoints.
	if !p.ShouldCheckpoint(0, time.Millisecond, 0) {
		t.Fatal("adaptive must checkpoint iteration 0")
	}
	p.RecordCheckpointCost(10 * time.Millisecond)
	// Next iteration: cumulative body 2ms, ckpt cost 10ms >> 10% budget.
	if p.ShouldCheckpoint(1, time.Millisecond, 10*time.Millisecond) {
		t.Fatal("adaptive should defer when over budget")
	}
	// After many long iterations the budget recovers.
	allowed := false
	for i := 2; i < 200; i++ {
		if p.ShouldCheckpoint(i, 10*time.Millisecond, 10*time.Millisecond) {
			allowed = true
			break
		}
	}
	if !allowed {
		t.Fatal("adaptive never recovered budget")
	}
}

func TestCheckpointSerializeRestoreRoundTrip(t *testing.T) {
	m := NewCheckpointManager(EveryN{N: 1})
	model := &toyModel{Sum: 42.5, Steps: 7}
	if err := m.Begin(map[string]script.Value{"model": model}); err != nil {
		t.Fatal(err)
	}
	blob, err := m.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	model.Sum = 0
	model.Steps = 0
	if err := m.RestoreInto(blob, map[string]script.Value{"model": model}); err != nil {
		t.Fatal(err)
	}
	if model.Sum != 42.5 || model.Steps != 7 {
		t.Fatalf("restore: %+v", model)
	}
}

func TestCheckpointRejectsNonSnapshotter(t *testing.T) {
	m := NewCheckpointManager(nil)
	if err := m.Begin(map[string]script.Value{"x": int64(5)}); err == nil {
		t.Fatal("non-snapshotter must be rejected")
	}
}

func TestCheckpointRestoreMissingObject(t *testing.T) {
	m := NewCheckpointManager(nil)
	model := &toyModel{}
	m.Begin(map[string]script.Value{"model": model})
	blob, _ := m.Serialize()
	other := &toyModel{}
	if err := m.RestoreInto(blob, map[string]script.Value{"missing": other}); err == nil {
		t.Fatal("missing object must error")
	}
}

// hindsightFixture records 3 versions of a training script in a repo +
// tables, then returns everything needed to drive hindsight replay.
func hindsightFixture(t *testing.T) (*vcs.Repo, *record.Tables, []VersionJob, *toyModel) {
	t.Helper()
	tables := newTestTables(t)
	repo := vcs.NewRepo()
	var versions []VersionJob
	for ts := int64(1); ts <= 3; ts++ {
		recordRun(t, tables, ts, EveryN{N: 1}, trainSrc)
		vid, err := repo.CommitFiles(map[string]string{"train.flow": trainSrc}, "run", time.Unix(ts, 0))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tables.Ts2vid.Insert(relation.Row{
			relation.Text("p"), relation.Int(ts), relation.Int(ts), relation.Text(vid), relation.Text("train"),
		}); err != nil {
			t.Fatal(err)
		}
		versions = append(versions, VersionJob{VID: vid, Tstamp: ts})
	}
	return repo, tables, versions, &toyModel{}
}

// newSrcWithWeightLog adds a hindsight statement after the inner loop.
const newSrcWithWeightLog = `
epochs = flor.arg("epochs", 4)
net = make_model()
with flor.checkpointing(model=net) {
    for epoch in flor.loop("epoch", range(epochs)) {
        for step in flor.loop("step", range(3)) {
            train_step(net, epoch * 3 + step)
        }
        weight = eval_model(net)
        flor.log("weight", weight)
        acc = eval_model(net)
        flor.log("acc", acc)
    }
}
`

func TestHindsightCoarseReplayAcrossVersions(t *testing.T) {
	repo, tables, versions, model := hindsightFixture(t)
	d := &Driver{Repo: repo, Tables: tables, ProjID: "p", Setup: setupHosts(model), Workers: 1}
	reports, err := d.Hindsight("train.flow", newSrcWithWeightLog, versions, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("version %s: %v", vcs.Short(rep.VID), rep.Err)
		}
		if rep.Injected != 2 { // weight assignment + log
			t.Fatalf("injected = %d", rep.Injected)
		}
		if rep.Mode != "coarse" {
			t.Fatalf("mode = %s", rep.Mode)
		}
		if rep.Stats.LogsEmitted != 4 { // one weight per epoch
			t.Fatalf("logs emitted = %d", rep.Stats.LogsEmitted)
		}
		// COARSE mode: every epoch's inner loop skipped.
		if rep.Stats.InnerLoopsSkipped != 4 {
			t.Fatalf("inner loops skipped = %d", rep.Stats.InnerLoopsSkipped)
		}
	}

	// The new "weight" values must equal the model state the original run
	// would have had: sum of 0..(3(e+1)-1).
	want := map[int64]float64{}
	for e := int64(0); e < 4; e++ {
		n := 3 * (e + 1)
		want[e] = float64(n*(n-1)) / 2
	}
	count := 0
	for _, row := range tables.Logs.Rows() {
		if row[4].AsText() != "weight" {
			continue
		}
		count++
		// Resolve epoch via ctx -> loops row.
		ctxID := row[3].AsInt()
		ts := row[1].AsInt()
		var epoch int64 = -1
		for _, lrow := range tables.Loops.Rows() {
			if lrow[3].AsInt() == ctxID && lrow[1].AsInt() == ts {
				epoch = lrow[6].AsInt()
			}
		}
		if epoch < 0 {
			t.Fatalf("weight log ctx %d has no loops row", ctxID)
		}
		got := record.ParseValue(row[5].AsText(), record.ValueType(row[6].AsInt()))
		if got.AsFloat() != want[epoch] {
			t.Fatalf("weight at epoch %d = %v want %v", epoch, got, want[epoch])
		}
	}
	if count != 12 { // 4 epochs x 3 versions
		t.Fatalf("weight logs = %d", count)
	}
	// Old names must NOT be duplicated: still exactly 4 acc logs per version.
	accCount := 0
	for _, row := range tables.Logs.Rows() {
		if row[4].AsText() == "acc" {
			accCount++
		}
	}
	if accCount != 12 {
		t.Fatalf("acc logs = %d (replay must not duplicate old logs)", accCount)
	}
}

// newSrcWithStepLog adds a hindsight statement INSIDE the inner loop.
const newSrcWithStepLog = `
epochs = flor.arg("epochs", 4)
net = make_model()
with flor.checkpointing(model=net) {
    for epoch in flor.loop("epoch", range(epochs)) {
        for step in flor.loop("step", range(3)) {
            train_step(net, epoch * 3 + step)
            flor.log("running_sum", eval_model(net))
        }
        acc = eval_model(net)
        flor.log("acc", acc)
    }
}
`

func TestHindsightFullReplayForInnerLoopStatements(t *testing.T) {
	repo, tables, versions, model := hindsightFixture(t)
	d := &Driver{Repo: repo, Tables: tables, ProjID: "p", Setup: setupHosts(model), Workers: 1}
	reports, err := d.Hindsight("train.flow", newSrcWithStepLog, versions[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := reports[0]
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Mode != "full" {
		t.Fatalf("mode = %s", rep.Mode)
	}
	if rep.Stats.LogsEmitted != 12 { // 4 epochs x 3 steps
		t.Fatalf("logs = %d", rep.Stats.LogsEmitted)
	}
	// Check a value: running_sum after step s of epoch e is sum of 0..(3e+s).
	found := 0
	for _, row := range tables.Logs.Rows() {
		if row[4].AsText() != "running_sum" || row[1].AsInt() != 1 {
			continue
		}
		found++
	}
	if found != 12 {
		t.Fatalf("running_sum logs at ts=1: %d", found)
	}
}

func TestHindsightTargetedEpochs(t *testing.T) {
	repo, tables, versions, model := hindsightFixture(t)
	d := &Driver{Repo: repo, Tables: tables, ProjID: "p", Setup: setupHosts(model), Workers: 1}
	reports, err := d.Hindsight("train.flow", newSrcWithWeightLog, versions[:1], []int{3})
	if err != nil {
		t.Fatal(err)
	}
	rep := reports[0]
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Stats.IterationsRun != 1 || rep.Stats.IterationsSkipped != 3 {
		t.Fatalf("targeted run: %+v", rep.Stats)
	}
	if rep.Stats.LogsEmitted != 1 {
		t.Fatalf("logs = %d", rep.Stats.LogsEmitted)
	}
}

func TestHindsightReusesRecordedCtxIDs(t *testing.T) {
	repo, tables, versions, model := hindsightFixture(t)
	loopsBefore := tables.Loops.Len()
	d := &Driver{Repo: repo, Tables: tables, ProjID: "p", Setup: setupHosts(model), Workers: 1}
	if _, err := d.Hindsight("train.flow", newSrcWithWeightLog, versions, nil); err != nil {
		t.Fatal(err)
	}
	// Replay must not mint new loops rows for existing iterations.
	if tables.Loops.Len() != loopsBefore {
		t.Fatalf("loops rows grew from %d to %d", loopsBefore, tables.Loops.Len())
	}
}

func TestHindsightParallelWorkers(t *testing.T) {
	repo, tables, versions, _ := hindsightFixture(t)
	// Each worker needs its own model instance; Setup constructs per-interp
	// models via make_model with a fresh toyModel per call.
	d := &Driver{Repo: repo, Tables: tables, ProjID: "p", Workers: 3,
		Setup: func(in *script.Interp) {
			m := &toyModel{}
			setupHosts(m)(in)
		}}
	reports, err := d.Hindsight("train.flow", newSrcWithWeightLog, versions, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		total += rep.Stats.LogsEmitted
	}
	if total != 12 {
		t.Fatalf("parallel logs = %d", total)
	}
}

func TestHindsightIdenticalVersionSkipped(t *testing.T) {
	repo, tables, versions, model := hindsightFixture(t)
	d := &Driver{Repo: repo, Tables: tables, ProjID: "p", Setup: setupHosts(model), Workers: 1}
	reports, err := d.Hindsight("train.flow", trainSrc, versions, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if !rep.Skipped {
			t.Fatalf("identical source must be skipped: %+v", rep)
		}
	}
}

func TestHindsightCoarseFallsBackToFull(t *testing.T) {
	// The OLD code defines `x` only inside the inner loop; the new version
	// merely adds flor.log("last_x", x) after the inner loop. COARSE replay
	// skips the inner loop, hits an undefined `x`, and must retry FULL.
	oldSrc := `
epochs = flor.arg("epochs", 4)
net = make_model()
with flor.checkpointing(model=net) {
    for epoch in flor.loop("epoch", range(epochs)) {
        for step in flor.loop("step", range(3)) {
            x = epoch * 3 + step
            train_step(net, x)
        }
        acc = eval_model(net)
        flor.log("acc", acc)
    }
}
`
	newSrc := `
epochs = flor.arg("epochs", 4)
net = make_model()
with flor.checkpointing(model=net) {
    for epoch in flor.loop("epoch", range(epochs)) {
        for step in flor.loop("step", range(3)) {
            x = epoch * 3 + step
            train_step(net, x)
        }
        flor.log("last_x", x)
        acc = eval_model(net)
        flor.log("acc", acc)
    }
}
`
	tables := newTestTables(t)
	repo := vcs.NewRepo()
	recordRun(t, tables, 1, EveryN{N: 1}, oldSrc)
	vid, _ := repo.CommitFiles(map[string]string{"train.flow": oldSrc}, "run", time.Unix(1, 0))
	tables.Ts2vid.Insert(relation.Row{relation.Text("p"), relation.Int(1), relation.Int(1), relation.Text(vid), relation.Text("train")})

	model := &toyModel{}
	d := &Driver{Repo: repo, Tables: tables, ProjID: "p", Setup: setupHosts(model), Workers: 1}
	reports, err := d.Hindsight("train.flow", newSrc, []VersionJob{{VID: vid, Tstamp: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := reports[0]
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if !rep.RetryFull || rep.Mode != "full" {
		t.Fatalf("expected full-mode retry: %+v", rep)
	}
	if rep.Stats.LogsEmitted != 4 {
		t.Fatalf("logs = %d", rep.Stats.LogsEmitted)
	}
}

func TestHistoricalVersions(t *testing.T) {
	repo, tables, versions, _ := hindsightFixture(t)
	jobs, err := HistoricalVersions(repo, tables, "p", "train.flow")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(versions) {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for i := range jobs {
		if jobs[i].VID != versions[i].VID || jobs[i].Tstamp != versions[i].Tstamp {
			t.Fatalf("job %d: %+v vs %+v", i, jobs[i], versions[i])
		}
	}
}

func TestReplayArgUsesHistoricalValue(t *testing.T) {
	tables := newTestTables(t)
	// Record with epochs=2 override.
	ctx := &Context{ProjID: "p", Filename: "train.flow", Tstamp: 1, Tables: tables}
	rec := NewRecorder(ctx, NewCheckpointManager(EveryN{N: 1}))
	rec.Args = map[string]string{"epochs": "2"}
	model := &toyModel{}
	in := script.NewInterp(rec, nil)
	setupHosts(model)(in)
	f, _ := script.Parse("train.flow", trainSrc)
	if err := in.Run(f); err != nil {
		t.Fatal(err)
	}
	if tables.Logs.Len() != 2 {
		t.Fatalf("recorded epochs = %d logs", tables.Logs.Len())
	}
	// Replay: default says 4, history says 2 — replay must honor 2.
	var counter int64 = MaxCtxID(tables)
	r := NewReplayer(&Context{ProjID: "p", Filename: "train.flow", Tstamp: 1, Tables: tables}, &counter)
	r.NewNames = map[string]bool{"weight": true}
	in2 := script.NewInterp(r, nil)
	model2 := &toyModel{}
	setupHosts(model2)(in2)
	f2, _ := script.Parse("train.flow", newSrcWithWeightLog)
	if err := in2.Run(f2); err != nil {
		t.Fatal(err)
	}
	if r.Stats.LogsEmitted != 2 {
		t.Fatalf("replay honored wrong epoch count: %d logs", r.Stats.LogsEmitted)
	}
}

func TestRecorderArgCoercion(t *testing.T) {
	tables := newTestTables(t)
	ctx := &Context{ProjID: "p", Filename: "f", Tstamp: 1, Tables: tables}
	rec := NewRecorder(ctx, nil)
	rec.Args = map[string]string{"lr": "0.5", "n": "7", "flag": "true", "name": "x"}
	if v, err := rec.Arg("lr", 0.001); err != nil || v.(float64) != 0.5 {
		t.Fatalf("float arg: %v %v", v, err)
	}
	if v, err := rec.Arg("n", int64(1)); err != nil || v.(int64) != 7 {
		t.Fatalf("int arg: %v %v", v, err)
	}
	if v, err := rec.Arg("flag", false); err != nil || v.(bool) != true {
		t.Fatalf("bool arg: %v %v", v, err)
	}
	if v, err := rec.Arg("name", "d"); err != nil || v.(string) != "x" {
		t.Fatalf("string arg: %v %v", v, err)
	}
	if v, err := rec.Arg("missing", int64(9)); err != nil || v.(int64) != 9 {
		t.Fatalf("default arg: %v %v", v, err)
	}
	if _, err := rec.Arg("name2", int64(1)); err == nil {
		rec.Args["name2"] = "not-an-int"
		if _, err := rec.Arg("name2", int64(1)); err == nil {
			t.Fatal("bad coercion must error")
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if (EveryN{N: 1}).Name() != "every-iteration" {
		t.Fatal("every-1 name")
	}
	if (EveryN{N: 4}).Name() != "every-4" {
		t.Fatal("every-4 name")
	}
	if (Never{}).Name() != "never" {
		t.Fatal("never name")
	}
	if (&Adaptive{}).Name() != "adaptive" {
		t.Fatal("adaptive name")
	}
}

func TestReplayNoCheckpointsDegeneratesToFull(t *testing.T) {
	// Record WITHOUT checkpoints; hindsight replay must still work by
	// re-executing everything.
	tables := newTestTables(t)
	repo := vcs.NewRepo()
	recordRun(t, tables, 1, Never{}, trainSrc)
	vid, _ := repo.CommitFiles(map[string]string{"train.flow": trainSrc}, "run", time.Unix(1, 0))
	tables.Ts2vid.Insert(relation.Row{relation.Text("p"), relation.Int(1), relation.Int(1), relation.Text(vid), relation.Text("train")})

	model := &toyModel{}
	d := &Driver{Repo: repo, Tables: tables, ProjID: "p", Setup: setupHosts(model), Workers: 1}
	reports, err := d.Hindsight("train.flow", newSrcWithWeightLog, []VersionJob{{VID: vid, Tstamp: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := reports[0]
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Stats.LogsEmitted != 4 {
		t.Fatalf("logs = %d", rep.Stats.LogsEmitted)
	}
	if rep.Stats.Restores != 0 {
		t.Fatalf("restores without checkpoints: %d", rep.Stats.Restores)
	}
	// All 4 iterations had to run.
	if rep.Stats.IterationsRun != 4 {
		t.Fatalf("iterations run = %d", rep.Stats.IterationsRun)
	}
}

func TestInjectedInsideInnerLoopDetection(t *testing.T) {
	newF, _ := script.Parse("t", newSrcWithStepLog)
	oldF, _ := script.Parse("t", trainSrc)
	merged, _ := script.Propagate(oldF, newF)
	if !injectedInsideInnerLoop(merged) {
		t.Fatal("inner-loop injection not detected")
	}
	newF2, _ := script.Parse("t", newSrcWithWeightLog)
	merged2, _ := script.Propagate(oldF, newF2)
	if injectedInsideInnerLoop(merged2) {
		t.Fatal("outer-loop injection misdetected as inner")
	}
}

func TestStrings(t *testing.T) {
	if !strings.Contains(ckptName("epoch", 3), "epoch") {
		t.Fatal("ckpt name")
	}
}
