package replay

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"flordb/internal/record"
	"flordb/internal/relation"
	"flordb/internal/script"
	"flordb/internal/storage"
	"flordb/internal/vcs"
)

// Driver orchestrates multiversion hindsight logging: given the latest
// version of a script containing new log statements, it (a) propagates the
// statements into every prior version via statement-level diffing, and (b)
// replays each version selectively and in parallel to materialize the new
// metadata (§2's "magic trick").
type Driver struct {
	Repo   *vcs.Repo
	Tables *record.Tables
	WAL    *storage.WAL       // optional
	Blobs  *storage.BlobStore // optional
	ProjID string
	// Setup registers host functions on each replay interpreter (model
	// constructors, featurizers, ...). It runs once per replayed version.
	Setup func(in *script.Interp)
	// Workers bounds replay parallelism; 0 means GOMAXPROCS.
	Workers int
	// Stdout receives script print output during replay (defaults to
	// io.Discard).
	Stdout io.Writer
}

// VersionJob names one historical version to backfill.
type VersionJob struct {
	VID    string
	Tstamp int64
}

// VersionReport describes what happened for one version.
type VersionReport struct {
	VID       string
	Tstamp    int64
	Injected  int
	Mode      string // "coarse", "full", or "none"
	Stats     ReplayStats
	Duration  time.Duration
	Skipped   bool // nothing to inject
	RetryFull bool // coarse replay failed; succeeded after full retry
	Err       error
}

// Hindsight runs the full propagate-and-replay pipeline for the file
// `filename`, whose newest content is newSrc, across the given historical
// versions. Reports are returned in the order of `versions`.
func (d *Driver) Hindsight(filename, newSrc string, versions []VersionJob, targets []int) ([]VersionReport, error) {
	newF, err := script.Parse(filename, newSrc)
	if err != nil {
		return nil, fmt.Errorf("replay: parse new version: %w", err)
	}
	newNamesAll := script.LoggedNames(newF)

	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(versions) && len(versions) > 0 {
		workers = len(versions)
	}

	ctxCounter := MaxCtxID(d.Tables)

	reports := make([]VersionReport, len(versions))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				reports[idx] = d.replayOne(filename, newF, newNamesAll, versions[idx], targets, &ctxCounter)
			}
		}()
	}
	for i := range versions {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return reports, nil
}

func (d *Driver) replayOne(filename string, newF *script.File, newNamesAll map[string]bool, job VersionJob, targets []int, ctxCounter *int64) VersionReport {
	start := time.Now()
	rep := VersionReport{VID: job.VID, Tstamp: job.Tstamp, Mode: "none"}

	oldSrc, err := d.Repo.FileAt(job.VID, filename)
	if err != nil {
		rep.Err = err
		return rep
	}
	oldF, err := script.Parse(filename, oldSrc)
	if err != nil {
		rep.Err = fmt.Errorf("parse %s@%s: %w", filename, vcs.Short(job.VID), err)
		return rep
	}
	merged, res := script.Propagate(oldF, newF)
	rep.Injected = res.Injected
	if res.Injected == 0 {
		rep.Skipped = true
		rep.Duration = time.Since(start)
		return rep
	}

	// Names added by propagation = names in merged that the old version
	// did not log.
	oldNames := script.LoggedNames(oldF)
	newNames := make(map[string]bool)
	for n := range script.LoggedNames(merged) {
		if !oldNames[n] {
			newNames[n] = true
		}
	}

	innerNeeded := injectedInsideInnerLoop(merged)
	mode := "coarse"
	if innerNeeded {
		mode = "full"
	}

	stats, err := d.runReplay(filename, merged, job, newNames, targets, innerNeeded, ctxCounter)
	if err != nil && !innerNeeded {
		// COARSE can fail when post-inner-loop statements reference
		// variables defined inside the skipped inner loop; retry FULL.
		stats2, err2 := d.runReplay(filename, merged, job, newNames, targets, true, ctxCounter)
		if err2 == nil {
			rep.RetryFull = true
			mode = "full"
			stats = stats2
			err = nil
		} else {
			err = err2
		}
	}
	rep.Mode = mode
	rep.Stats = stats
	rep.Err = err
	rep.Duration = time.Since(start)
	return rep
}

func (d *Driver) runReplay(filename string, merged *script.File, job VersionJob, newNames map[string]bool, targets []int, innerNeeded bool, ctxCounter *int64) (ReplayStats, error) {
	ctx := &Context{
		ProjID:   d.ProjID,
		Filename: filename,
		Tstamp:   job.Tstamp,
		Tables:   d.Tables,
		WAL:      d.WAL,
		Blobs:    d.Blobs,
	}
	r := NewReplayer(ctx, ctxCounter)
	r.NewNames = newNames
	r.InnerNeeded = innerNeeded
	if targets != nil {
		r.Targets = make(map[int]bool, len(targets))
		for _, t := range targets {
			r.Targets[t] = true
		}
	}
	stdout := d.Stdout
	if stdout == nil {
		stdout = io.Discard
	}
	in := script.NewInterp(r, stdout)
	if d.Setup != nil {
		d.Setup(in)
	}
	err := in.Run(merged)
	return r.Stats, err
}

// injectedInsideInnerLoop reports whether any injected statement (Line()==0)
// sits at flor.loop nesting depth >= 2 — requiring FULL re-execution.
func injectedInsideInnerLoop(f *script.File) bool {
	found := false
	var walk func(stmts []script.Stmt, loopDepth int)
	walk = func(stmts []script.Stmt, loopDepth int) {
		for _, s := range stmts {
			depth := loopDepth
			if fs, ok := s.(*script.ForStmt); ok {
				if call, isCall := fs.Iterable.(*script.CallExpr); isCall && call.Fn == "flor.loop" {
					depth++
				}
			}
			if s.Line() == 0 && loopDepth >= 2 {
				found = true
			}
			for _, b := range script.Body(s) {
				walk(b, depth)
			}
		}
	}
	walk(f.Stmts, 0)
	return found
}

// HistoricalVersions lists (vid, tstamp) pairs for every recorded execution
// of a file, oldest first, using the ts2vid table. Versions where the file
// was committed but never executed (no loops/logs/args rows carry its
// filename at that timestamp) are skipped — hindsight logging backfills
// runs, not mere commits.
func HistoricalVersions(repo *vcs.Repo, tables *record.Tables, projid, filename string) ([]VersionJob, error) {
	vids, err := repo.AllVersionsOf(filename)
	if err != nil {
		return nil, err
	}
	byVID := make(map[string]int64)
	// ts2vid schema: projid, ts_start, ts_end, vid, root_target
	for _, row := range tables.Ts2vid.Rows() {
		if row[0].AsText() == projid {
			byVID[row[3].AsText()] = row[1].AsInt()
		}
	}
	executed := make(map[int64]bool)
	markExecuted := func(rows []relation.Row) {
		for _, row := range rows {
			if row[0].AsText() == projid && row[2].AsText() == filename {
				executed[row[1].AsInt()] = true
			}
		}
	}
	markExecuted(tables.Loops.Rows())
	markExecuted(tables.Logs.Rows())
	// args schema: projid, tstamp, filename, name, value
	markExecuted(tables.Args.Rows())

	var out []VersionJob
	for _, vid := range vids {
		if ts, ok := byVID[vid]; ok && executed[ts] {
			out = append(out, VersionJob{VID: vid, Tstamp: ts})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tstamp < out[j].Tstamp })
	return out, nil
}
