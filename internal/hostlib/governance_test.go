package hostlib

import (
	"strings"
	"testing"

	flor "flordb"
	"flordb/internal/docsim"
	"flordb/internal/relation"
	"flordb/internal/script"
)

// TestPostHocGovernanceEnforcement reproduces §4's "Post-Hoc Governance
// Enforcement: apply governance policies retroactively to identify and
// handle issues like corrupted or malicious datasets (e.g., detecting a
// poisoned dataset)".
//
// Scenario: the featurization pipeline (Figure 3) ran over a corpus weeks
// ago. Nobody checked for poisoned content at the time. Governance later
// defines a policy ("pages containing the POISON marker are malicious") —
// the check is added to the NEWEST featurize.flow, hindsight logging
// backfills the flag into the historical run, and a SQL query identifies
// the affected documents.
func TestPostHocGovernanceEnforcement(t *testing.T) {
	sess, err := flor.OpenMemory("pdf", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A corpus with two poisoned pages.
	st := NewState(docsim.Config{NumDocs: 5, MinPages: 3, MaxPages: 4, OCRFraction: 0.3, Seed: 9}, 16)
	st.Corpus.Docs[1].Pages[0].Text += "\nPOISON-MARKER-7f3a\n"
	st.Corpus.Docs[3].Pages[2].Text += "\nPOISON-MARKER-7f3a\n"
	Register(sess, st)

	// Historical run: Figure-3 featurization, with no poison check.
	if err := sess.RunScript("featurize.flow", FeaturizeSrc); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit("featurize run"); err != nil {
		t.Fatal(err)
	}
	histTs := sess.Tstamp() - 1

	// Sanity: at this point no governance metadata exists.
	if res, _ := sess.SQL("SELECT count(*) AS n FROM logs WHERE value_name = 'poisoned'"); res.Rows[0][0].AsInt() != 0 {
		t.Fatal("poison flags exist before the audit")
	}

	// Governance arrives: the NEWEST featurize.flow gains the policy check.
	audited := strings.Replace(FeaturizeSrc,
		`flor.log("page_text", page_text)`,
		`flor.log("page_text", page_text)
        flor.log("poisoned", "POISON-MARKER" in page_text)`, 1)
	if audited == FeaturizeSrc {
		t.Fatal("test setup: replacement failed")
	}

	reports, err := sess.Hindsight("featurize.flow", audited, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	rep := reports[0]
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Tstamp != histTs {
		t.Fatalf("replayed wrong version: %d", rep.Tstamp)
	}
	if rep.Injected != 1 {
		t.Fatalf("injected = %d", rep.Injected)
	}
	if rep.Stats.LogsEmitted != st.Corpus.NumPages() {
		t.Fatalf("poison flags = %d want %d", rep.Stats.LogsEmitted, st.Corpus.NumPages())
	}

	// The governance query: which documents violated the policy, and where?
	res, err := sess.SQL(`
		SELECT o.loop_name, o.iteration_value, count(*) AS n
		FROM logs l JOIN loops o ON l.ctx_id = o.ctx_id
		WHERE l.value_name = 'poisoned' AND l.value = 'true' AND o.loop_name = 'page'
		GROUP BY o.loop_name, o.iteration_value
		ORDER BY o.iteration_value`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // pages 0 and 2
		t.Fatalf("violating pages: %v", res.Rows)
	}

	// Document-level attribution via the dataframe's dimension columns.
	df, err := sess.Dataframe("poisoned")
	if err != nil {
		t.Fatal(err)
	}
	di := df.Index("document_value")
	pi := df.Index("page_value")
	vi := df.Index("poisoned")
	var flagged []string
	for _, r := range df.Rows {
		if !r[vi].IsNull() && r[vi].Type() == relation.TBool && r[vi].AsBool() {
			flagged = append(flagged, r[di].AsText()+":"+r[pi].AsText())
		}
	}
	want := []string{"doc001.pdf:0", "doc003.pdf:2"}
	if len(flagged) != 2 || flagged[0] != want[0] || flagged[1] != want[1] {
		t.Fatalf("flagged = %v want %v", flagged, want)
	}

	// The historical run's other metadata was NOT disturbed (no duplicates).
	cres, err := sess.SQL("SELECT count(*) AS n FROM logs WHERE value_name = 'text_src'")
	if err != nil {
		t.Fatal(err)
	}
	if cres.Rows[0][0].AsInt() != int64(st.Corpus.NumPages()) {
		t.Fatalf("text_src rows = %v (duplicated by replay?)", cres.Rows[0][0])
	}
}

// TestGovernanceAuditChart exercises the §4 metric-visualization role on
// hindsight-materialized data: chart a backfilled metric across versions.
func TestGovernanceAuditChart(t *testing.T) {
	sess, err := flor.OpenMemory("pdf", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := demoState()
	Register(sess, st)
	for v := 0; v < 2; v++ {
		if err := sess.RunScript("train.flow", TrainSrc); err != nil {
			t.Fatal(err)
		}
		if err := sess.Commit("run"); err != nil {
			t.Fatal(err)
		}
	}
	df, err := sess.Dataframe("acc")
	if err != nil {
		t.Fatal(err)
	}
	chart, err := df.Chart("acc", "epoch_value", 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "ts=1") || !strings.Contains(chart, "ts=2") {
		t.Fatalf("chart legend:\n%s", chart)
	}
}

// Compile-time check that hostlib's Registrar matches both the session and
// the interpreter.
var (
	_ Registrar = (*flor.Session)(nil)
	_ Registrar = (*script.Interp)(nil)
)
