// Package hostlib registers the domain host functions Flow pipelines call:
// corpus access (the paper's os.listdir / read_page in Figure 3),
// featurization (analyze_text), and model training (Figure 5's net,
// optimizer, train/eval steps) — all backed by the docsim and mlsim
// substrates. The CLI, the examples, and the benchmarks share this library
// so recorded runs and hindsight replays see identical host semantics.
package hostlib

import (
	"fmt"

	"flordb/internal/docsim"
	"flordb/internal/mlsim"
	"flordb/internal/script"
)

// State carries the corpus and datasets host functions operate on.
type State struct {
	Corpus  *docsim.Corpus
	Dim     int
	Train   *mlsim.Dataset
	Test    *mlsim.Dataset
	SeedRNG uint64
}

// NewState builds the standard demo state: a synthetic corpus and a
// train/test split of its first-page classification dataset.
func NewState(cfg docsim.Config, dim int) *State {
	corpus := docsim.Generate(cfg)
	data := corpus.ToDataset(dim)
	train, test := data.Split(0.3, mlsim.NewRNG(cfg.Seed+1000))
	return &State{Corpus: corpus, Dim: dim, Train: train, Test: test, SeedRNG: cfg.Seed}
}

// Registrar is anything host functions can be registered on (a flor.Session
// or a script.Interp).
type Registrar interface {
	RegisterHost(name string, fn script.HostFunc)
}

// Register installs the host library.
func Register(r Registrar, st *State) {
	// ---- corpus access (Figure 3) ----
	r.RegisterHost("listdir", func([]script.Value, map[string]script.Value) (script.Value, error) {
		names := st.Corpus.DocNames()
		items := make([]script.Value, len(names))
		for i, n := range names {
			items[i] = n
		}
		return script.NewList(items...), nil
	})
	r.RegisterHost("num_pages", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		doc, err := docArg(st, args, 0)
		if err != nil {
			return nil, err
		}
		return int64(len(doc.Pages)), nil
	})
	// read_page(doc, page) -> [text_src, page_text]
	r.RegisterHost("read_page", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		doc, err := docArg(st, args, 0)
		if err != nil {
			return nil, err
		}
		p, err := intArg(args, 1)
		if err != nil {
			return nil, err
		}
		if p < 0 || int(p) >= len(doc.Pages) {
			return nil, fmt.Errorf("read_page: page %d out of range", p)
		}
		page := doc.Pages[p]
		return script.NewList(page.TextSrc, page.Text), nil
	})
	// analyze_text(text) -> {"headings": [...], "page_numbers": [...]}
	r.RegisterHost("analyze_text", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		text, err := strArg(args, 0)
		if err != nil {
			return nil, err
		}
		f := docsim.AnalyzeText(text)
		headings := make([]script.Value, len(f.Headings))
		for i, h := range f.Headings {
			headings[i] = h
		}
		nums := make([]script.Value, len(f.PageNumbers))
		for i, n := range f.PageNumbers {
			nums[i] = int64(n)
		}
		d := script.NewDict()
		d.Set("headings", script.NewList(headings...))
		d.Set("page_numbers", script.NewList(nums...))
		d.Set("word_count", int64(f.WordCount))
		d.Set("has_case_no", f.HasCaseNo)
		return d, nil
	})
	r.RegisterHost("is_first_page", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		doc, err := docArg(st, args, 0)
		if err != nil {
			return nil, err
		}
		p, err := intArg(args, 1)
		if err != nil {
			return nil, err
		}
		if p < 0 || int(p) >= len(doc.Pages) {
			return nil, fmt.Errorf("is_first_page: page %d out of range", p)
		}
		return doc.Pages[p].FirstPage, nil
	})

	// ---- model training (Figure 5) ----
	// make_mlp(hidden, seed) -> model over the corpus feature space
	r.RegisterHost("make_mlp", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		hidden, err := intArg(args, 0)
		if err != nil {
			return nil, err
		}
		seed, err := intArg(args, 1)
		if err != nil {
			return nil, err
		}
		return mlsim.NewMLP(st.Dim, int(hidden), 2, mlsim.NewRNG(uint64(seed))), nil
	})
	r.RegisterHost("make_sgd", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		m, ok := argAt(args, 0).(*mlsim.MLP)
		if !ok {
			return nil, fmt.Errorf("make_sgd: first argument must be a model")
		}
		lr, err := floatArg(args, 1)
		if err != nil {
			return nil, err
		}
		momentum, err := floatArg(args, 2)
		if err != nil {
			return nil, err
		}
		return mlsim.NewSGD(m, lr, momentum), nil
	})
	// batches(batch_size, epoch_seed) -> list of Batch host objects
	r.RegisterHost("batches", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		size, err := intArg(args, 0)
		if err != nil {
			return nil, err
		}
		seed, err := intArg(args, 1)
		if err != nil {
			return nil, err
		}
		shuffled := st.Train.Shuffled(mlsim.NewRNG(st.SeedRNG ^ uint64(seed)*0x9e37))
		bs := shuffled.Batches(int(size))
		items := make([]script.Value, len(bs))
		for i := range bs {
			items[i] = &bs[i]
		}
		return script.NewList(items...), nil
	})
	// train_step(model, opt, batch) -> loss
	r.RegisterHost("train_step", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		m, ok := argAt(args, 0).(*mlsim.MLP)
		if !ok {
			return nil, fmt.Errorf("train_step: bad model")
		}
		opt, ok := argAt(args, 1).(*mlsim.SGD)
		if !ok {
			return nil, fmt.Errorf("train_step: bad optimizer")
		}
		b, ok := argAt(args, 2).(*mlsim.Batch)
		if !ok {
			return nil, fmt.Errorf("train_step: bad batch")
		}
		return opt.Step(m, b.X, b.Y), nil
	})
	// eval_model(model) -> [acc, recall]
	r.RegisterHost("eval_model", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		m, ok := argAt(args, 0).(*mlsim.MLP)
		if !ok {
			return nil, fmt.Errorf("eval_model: bad model")
		}
		met := mlsim.Evaluate(m, st.Test)
		return script.NewList(met.Accuracy, met.MacroRecall), nil
	})
	r.RegisterHost("weight_norm", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		m, ok := argAt(args, 0).(*mlsim.MLP)
		if !ok {
			return nil, fmt.Errorf("weight_norm: bad model")
		}
		return m.WeightNorm(), nil
	})
	// predict_first_pages(model, doc_name) -> list of 0/1 per page
	r.RegisterHost("predict_first_pages", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		m, ok := argAt(args, 0).(*mlsim.MLP)
		if !ok {
			return nil, fmt.Errorf("predict_first_pages: bad model")
		}
		doc, err := docArg(st, args, 1)
		if err != nil {
			return nil, err
		}
		items := make([]script.Value, len(doc.Pages))
		for i, p := range doc.Pages {
			items[i] = int64(m.Predict(docsim.Vectorize(p, st.Dim)))
		}
		return script.NewList(items...), nil
	})
}

func argAt(args []script.Value, i int) script.Value {
	if i >= len(args) {
		return nil
	}
	return args[i]
}

func docArg(st *State, args []script.Value, i int) (*docsim.Document, error) {
	name, err := strArg(args, i)
	if err != nil {
		return nil, err
	}
	doc, ok := st.Corpus.Doc(name)
	if !ok {
		return nil, fmt.Errorf("unknown document %q", name)
	}
	return doc, nil
}

func strArg(args []script.Value, i int) (string, error) {
	s, ok := argAt(args, i).(string)
	if !ok {
		return "", fmt.Errorf("argument %d: expected string", i)
	}
	return s, nil
}

func intArg(args []script.Value, i int) (int64, error) {
	n, ok := argAt(args, i).(int64)
	if !ok {
		return 0, fmt.Errorf("argument %d: expected integer", i)
	}
	return n, nil
}

func floatArg(args []script.Value, i int) (float64, error) {
	switch x := argAt(args, i).(type) {
	case float64:
		return x, nil
	case int64:
		return float64(x), nil
	}
	return 0, fmt.Errorf("argument %d: expected number", i)
}
