package hostlib

import (
	"fmt"
	"strconv"

	flor "flordb"
	"flordb/internal/mlsim"
	"flordb/internal/replay"
	"flordb/internal/script"
)

// RegisterFlorQueries installs host functions that query the FlorDB session
// itself — the paper's "model registry" role (§4.2): selecting and loading
// the best checkpoint by a validation metric.
func RegisterFlorQueries(r Registrar, sess *flor.Session) {
	// restore_best(model, metric): find the (tstamp, epoch) with the highest
	// metric across all runs, load that epoch's checkpoint, restore the model.
	r.RegisterHost("restore_best", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		m, ok := argAt(args, 0).(*mlsim.MLP)
		if !ok {
			return nil, fmt.Errorf("restore_best: first argument must be a model")
		}
		metric, err := strArg(args, 1)
		if err != nil {
			return nil, err
		}
		ts, iter, val, err := BestCheckpoint(sess, metric)
		if err != nil {
			return nil, err
		}
		blob, found := sess.Tables().GetBlobExact(sess.ProjID, replay.CkptBlobName("epoch", iter), ts)
		if !found {
			return nil, fmt.Errorf("restore_best: no checkpoint for epoch %d at version %d", iter, ts)
		}
		if err := replay.RestoreObjects(blob, map[string]script.Value{"model": m}); err != nil {
			return nil, err
		}
		return val, nil
	})
	// best_metric(metric) -> highest recorded value of the metric.
	r.RegisterHost("best_metric", func(args []script.Value, _ map[string]script.Value) (script.Value, error) {
		metric, err := strArg(args, 0)
		if err != nil {
			return nil, err
		}
		_, _, val, err := BestCheckpoint(sess, metric)
		if err != nil {
			return nil, err
		}
		return val, nil
	})
}

// BestCheckpoint returns the (tstamp, epoch, value) of the best recorded
// value for a metric logged at epoch level — the query behind the paper's
// flor.dataframe("acc", "recall") checkpoint selection.
func BestCheckpoint(sess *flor.Session, metric string) (tstamp int64, epoch int, value float64, err error) {
	df, err := sess.Dataframe(metric)
	if err != nil {
		return 0, 0, 0, err
	}
	best, err := df.ArgMax(metric)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("restore_best: no %q values recorded: %w", metric, err)
	}
	ti := df.Index("tstamp")
	ei := df.Index("epoch_value")
	if ei < 0 {
		return 0, 0, 0, fmt.Errorf("restore_best: %q was not logged inside an epoch loop", metric)
	}
	ep, err := strconv.Atoi(best[ei].AsText())
	if err != nil {
		return 0, 0, 0, fmt.Errorf("restore_best: bad epoch value %q", best[ei].AsText())
	}
	return best[ti].AsInt(), ep, best[df.Index(metric)].AsFloat(), nil
}
