package hostlib

import (
	"testing"

	flor "flordb"
	"flordb/internal/docsim"
	"flordb/internal/replay"
)

func demoState() *State {
	return NewState(docsim.Config{NumDocs: 6, MinPages: 3, MaxPages: 5, OCRFraction: 0.4, Seed: 2}, 16)
}

func newSess(t *testing.T) (*flor.Session, *State) {
	t.Helper()
	sess, err := flor.OpenMemory("pdf", flor.Options{Policy: replay.EveryN{N: 1}})
	if err != nil {
		t.Fatal(err)
	}
	st := demoState()
	Register(sess, st)
	RegisterFlorQueries(sess, sess)
	return sess, st
}

func TestFeaturizeScriptFigure3(t *testing.T) {
	sess, st := newSess(t)
	if err := sess.RunScript("featurize.flow", FeaturizeSrc); err != nil {
		t.Fatal(err)
	}
	df, err := sess.Dataframe("text_src", "page_text", "headings", "page_numbers", "first_page")
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != st.Corpus.NumPages() {
		t.Fatalf("rows = %d want %d\n", df.Len(), st.Corpus.NumPages())
	}
	// Dimension columns match Figure 3's dataframe.
	for _, col := range []string{"document_value", "page_value", "text_src", "page_text"} {
		if df.Index(col) < 0 {
			t.Fatalf("missing column %s: %v", col, df.Columns)
		}
	}
	// first_page true exactly once per document.
	fi := df.Index("first_page")
	di := df.Index("document_value")
	counts := map[string]int{}
	for _, r := range df.Rows {
		if r[fi].AsBool() {
			counts[r[di].AsText()]++
		}
	}
	for doc, n := range counts {
		if n != 1 {
			t.Fatalf("doc %s has %d first pages", doc, n)
		}
	}
	if len(counts) != len(st.Corpus.Docs) {
		t.Fatalf("first pages found for %d docs", len(counts))
	}
}

func TestTrainScriptFigure5(t *testing.T) {
	sess, _ := newSess(t)
	if err := sess.RunScript("train.flow", TrainSrc); err != nil {
		t.Fatal(err)
	}
	df, err := sess.Dataframe("acc", "recall")
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 5 { // default epochs
		t.Fatalf("epoch rows = %d", df.Len())
	}
	accs, _ := df.Column("acc")
	// Training must actually learn: final accuracy high.
	final := accs[len(accs)-1].AsFloat()
	if final < 0.85 {
		t.Fatalf("final acc = %v", final)
	}
	// Checkpoints exist for every epoch (model+optimizer in one blob each).
	res, err := sess.SQL("SELECT count(*) AS n FROM obj_store")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 5 {
		t.Fatalf("checkpoints: %v", res.Rows)
	}
	// Loss logged at step level with both loop dims.
	ldf, err := sess.Dataframe("loss")
	if err != nil {
		t.Fatal(err)
	}
	if ldf.Index("epoch_value") < 0 || ldf.Index("step_value") < 0 {
		t.Fatalf("loss dims: %v", ldf.Columns)
	}
}

func TestTrainArgsOverride(t *testing.T) {
	sess, err := flor.OpenMemory("pdf", flor.Options{
		Policy: replay.EveryN{N: 1},
		Args:   map[string]string{"epochs": "2", "hidden": "8"},
	})
	if err != nil {
		t.Fatal(err)
	}
	Register(sess, demoState())
	if err := sess.RunScript("train.flow", TrainSrc); err != nil {
		t.Fatal(err)
	}
	df, _ := sess.Dataframe("acc")
	if df.Len() != 2 {
		t.Fatalf("epochs override: %d rows", df.Len())
	}
}

func TestInferScriptUsesBestCheckpoint(t *testing.T) {
	sess, st := newSess(t)
	// Two training runs with different seeds produce different quality.
	if err := sess.RunScript("train.flow", TrainSrc); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit("run 1"); err != nil {
		t.Fatal(err)
	}
	if err := sess.RunScript("train.flow", TrainSrc); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit("run 2"); err != nil {
		t.Fatal(err)
	}
	// Inference restores the best-by-recall checkpoint and predicts.
	if err := sess.RunScript("infer.flow", InferSrc); err != nil {
		t.Fatal(err)
	}
	df, err := sess.Dataframe("num_first_pages")
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != len(st.Corpus.Docs) {
		t.Fatalf("prediction rows = %d", df.Len())
	}
	// The restored model is good: most docs predicted with exactly 1 first page.
	vals, _ := df.Column("num_first_pages")
	correct := 0
	for _, v := range vals {
		if v.AsInt() == 1 {
			correct++
		}
	}
	if correct < len(vals)*2/3 {
		t.Fatalf("restored model too weak: %d/%d docs correct", correct, len(vals))
	}
}

func TestBestCheckpointQuery(t *testing.T) {
	sess, _ := newSess(t)
	if err := sess.RunScript("train.flow", TrainSrc); err != nil {
		t.Fatal(err)
	}
	ts, epoch, val, err := BestCheckpoint(sess, "acc")
	if err != nil {
		t.Fatal(err)
	}
	if ts != sess.Tstamp() || epoch < 0 || epoch > 4 || val <= 0 {
		t.Fatalf("best: ts=%d epoch=%d val=%v", ts, epoch, val)
	}
	if _, _, _, err := BestCheckpoint(sess, "never_logged"); err == nil {
		t.Fatal("missing metric must error")
	}
}

func TestHindsightWeightNormEndToEnd(t *testing.T) {
	// The paper's headline demo, on the real ML substrate: train 2 versions,
	// then backfill weight_norm into both from checkpoints.
	sess, _ := newSess(t)
	for v := 0; v < 2; v++ {
		if err := sess.RunScript("train.flow", TrainSrc); err != nil {
			t.Fatal(err)
		}
		if err := sess.Commit("run"); err != nil {
			t.Fatal(err)
		}
	}
	reports, err := sess.Hindsight("train.flow", TrainSrcWithNorm, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("version %s: %v", rep.VID[:8], rep.Err)
		}
		if rep.Mode != "coarse" {
			t.Fatalf("mode = %s (weight_norm is outside the inner loop)", rep.Mode)
		}
		if rep.Stats.LogsEmitted != 5 {
			t.Fatalf("logs = %d", rep.Stats.LogsEmitted)
		}
		if rep.Stats.InnerLoopsSkipped != 5 {
			t.Fatalf("inner loops skipped = %d", rep.Stats.InnerLoopsSkipped)
		}
	}
	df, err := sess.Dataframe("weight_norm", "acc")
	if err != nil {
		t.Fatal(err)
	}
	if df.Len() != 10 { // 2 versions x 5 epochs
		t.Fatalf("rows = %d", df.Len())
	}
	wi := df.Index("weight_norm")
	for _, r := range df.Rows {
		if r[wi].IsNull() || r[wi].AsFloat() <= 0 {
			t.Fatalf("weight_norm missing or bad: %v", r)
		}
	}
	// Norms must grow across epochs within a version (training moves weights).
	ti, ei := df.Index("tstamp"), df.Index("epoch_value")
	byVersion := map[int64]map[string]float64{}
	for _, r := range df.Rows {
		ts := r[ti].AsInt()
		if byVersion[ts] == nil {
			byVersion[ts] = map[string]float64{}
		}
		byVersion[ts][r[ei].AsText()] = r[wi].AsFloat()
	}
	for ts, norms := range byVersion {
		if norms["0"] == norms["4"] {
			t.Fatalf("version %d: norms identical across epochs (restore broken?)", ts)
		}
	}
}
