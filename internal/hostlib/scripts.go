package hostlib

// Canonical Flow pipeline scripts used by the CLI, examples, tests and
// benchmarks. They transliterate the paper's figures into Flow.

// FeaturizeSrc is Figure 3: per-document, per-page featurization.
const FeaturizeSrc = `
# featurize.flow — Figure 3 of the paper
for doc_name in flor.loop("document", listdir()) {
    N = num_pages(doc_name)
    for page in flor.loop("page", range(N)) {
        # text_src is "OCR" or "TXT"
        pair = read_page(doc_name, page)
        text_src = pair[0]
        page_text = pair[1]
        flor.log("text_src", text_src)
        flor.log("page_text", page_text)

        # Run some featurization
        feats = analyze_text(page_text)
        flor.log("headings", join(feats["headings"], "|"))
        flor.log("page_numbers", len(feats["page_numbers"]))
        flor.log("first_page", is_first_page(doc_name, page))
    }
}
`

// TrainSrc is Figure 5: training with checkpointing and metric logging.
const TrainSrc = `
# train.flow — Figure 5 of the paper
hidden_size = flor.arg("hidden", 32)
num_epochs = flor.arg("epochs", 5)
batch_size = flor.arg("batch_size", 16)
learning_rate = flor.arg("lr", 0.05)
seed = flor.arg("seed", 7)

net = make_mlp(hidden_size, seed)
optimizer = make_sgd(net, learning_rate, 0.9)

with flor.checkpointing(model=net, optimizer=optimizer) {
    for epoch in flor.loop("epoch", range(num_epochs)) {
        for data in flor.loop("step", batches(batch_size, epoch)) {
            loss = train_step(net, optimizer, data)
            flor.log("loss", loss)
        }
        metrics = eval_model(net)
        flor.log("acc", metrics[0])
        flor.log("recall", metrics[1])
    }
}
`

// TrainSrcWithNorm is TrainSrc plus a hindsight statement: the developer
// later realizes they want the model's weight norm per epoch.
const TrainSrcWithNorm = `
# train.flow — Figure 5 plus a hindsight weight_norm log
hidden_size = flor.arg("hidden", 32)
num_epochs = flor.arg("epochs", 5)
batch_size = flor.arg("batch_size", 16)
learning_rate = flor.arg("lr", 0.05)
seed = flor.arg("seed", 7)

net = make_mlp(hidden_size, seed)
optimizer = make_sgd(net, learning_rate, 0.9)

with flor.checkpointing(model=net, optimizer=optimizer) {
    for epoch in flor.loop("epoch", range(num_epochs)) {
        for data in flor.loop("step", batches(batch_size, epoch)) {
            loss = train_step(net, optimizer, data)
            flor.log("loss", loss)
        }
        norm = weight_norm(net)
        flor.log("weight_norm", norm)
        metrics = eval_model(net)
        flor.log("acc", metrics[0])
        flor.log("recall", metrics[1])
    }
}
`

// InferSrc is the §4.2 inference pipeline: pick the best checkpoint by
// recall from the dataframe, then log predictions per document.
const InferSrc = `
# infer.flow — §4.2 inference using the best model by validation recall
hidden_size = flor.arg("hidden", 32)
seed = flor.arg("seed", 7)
net = make_mlp(hidden_size, seed)
restore_best(net, "recall")

for doc_name in flor.loop("document", listdir()) {
    preds = predict_first_pages(net, doc_name)
    flor.log("num_first_pages", sum(preds))
    flor.log("pred_doc", doc_name)
}
`
