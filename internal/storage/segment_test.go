package storage

import (
	"os"
	"path/filepath"
	"testing"

	"flordb/internal/record"
	"flordb/internal/relation"
)

func newTables(t *testing.T) *record.Tables {
	t.Helper()
	tables, err := record.CreateTables(relation.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

// fillCommits appends n transactions of `per` log records each, committing
// after every transaction.
func fillCommits(t *testing.T, w *WAL, n, per int) {
	t.Helper()
	ts := int64(1)
	for i := 0; i < n; i++ {
		for j := 0; j < per; j++ {
			if err := w.Append(logRec(ts, "x", "v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.AppendCommit(commitRec(ts)); err != nil {
			t.Fatal(err)
		}
		ts++
	}
}

func TestWALRotatesAtCommitBoundary(t *testing.T) {
	path := walPath(t)
	w, err := OpenWAL(path, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	fillCommits(t, w, 5, 3)
	segs, err := ListSegments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no rotation despite tiny segment size")
	}
	for i, sg := range segs {
		if sg.Seq != int64(i+1) {
			t.Fatalf("segment seq %d at position %d", sg.Seq, i)
		}
		// Rotation only happens at commit boundaries: every sealed segment
		// ends with a commit record.
		var last any
		if err := Replay(sg.Path, false, func(rec any) error { last = rec; return nil }); err != nil {
			t.Fatal(err)
		}
		if _, ok := last.(*record.CommitRecord); !ok {
			t.Fatalf("segment %d ends with %T, want commit", sg.Seq, last)
		}
	}
	// The full stream is intact across segments.
	var n int
	if _, err := ReplaySegments(path, 0, false, func(rec any) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5*3+5 {
		t.Fatalf("replayed %d records, want %d", n, 5*3+5)
	}
	w.Close()
}

func TestReplaySegmentsStrictAcrossFiles(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{SegmentBytes: 1}) // rotate after every commit
	fillCommits(t, w, 2, 2)
	// Uncommitted tail in the active file.
	w.Append(logRec(9, "tail", "t"))
	w.Close()

	var all, committed int
	stats, err := ReplaySegments(path, 0, false, func(rec any) error { all++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplaySegments(path, 0, true, func(rec any) error { committed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if all != 7 || committed != 6 {
		t.Fatalf("all=%d committed=%d", all, committed)
	}
	// The active file holds only the uncommitted record: no commit, len 0.
	if stats.ActiveCommittedLen != 0 {
		t.Fatalf("ActiveCommittedLen = %d, want 0", stats.ActiveCommittedLen)
	}
}

func TestSealRefusesUncommittedTail(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{})
	fillCommits(t, w, 1, 1)
	w.Append(logRec(2, "uncommitted", "u"))
	seq, err := w.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 {
		t.Fatal("sealed a file with an uncommitted tail")
	}
	if err := w.AppendCommit(commitRec(2)); err != nil {
		t.Fatal(err)
	}
	seq, err = w.Seal()
	if err != nil || seq != 1 {
		t.Fatalf("seal after commit: seq=%d err=%v", seq, err)
	}
	// Active is now empty; sealing again is a no-op.
	if seq, _ := w.Seal(); seq != 0 {
		t.Fatal("sealed an empty active file")
	}
	w.Close()
}

func TestTruncateDropsTail(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{})
	fillCommits(t, w, 1, 1)
	stats, err := ReplaySegments(path, 0, true, func(any) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	w.Append(logRec(5, "tail", "t"))
	w.Flush()
	if err := w.Truncate(stats.ActiveCommittedLen); err != nil {
		t.Fatal(err)
	}
	w.Close()
	var n int
	if err := Replay(path, false, func(any) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("records after truncate = %d, want 2", n)
	}
}

// dumpTables renders every base-table row for multiset comparison.
func dumpTables(t *record.Tables) []string {
	var out []string
	for _, tbl := range []*relation.Table{t.Logs, t.Loops, t.Ts2vid, t.ObjStore, t.Args} {
		tbl.Scan(func(_ relation.RowID, r relation.Row) bool {
			line := tbl.Name()
			for _, v := range r {
				line += "|" + v.String()
			}
			out = append(out, line)
			return true
		})
	}
	return out
}

func sameMultiset(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count %d != %d", len(got), len(want))
	}
	count := make(map[string]int, len(want))
	for _, s := range want {
		count[s]++
	}
	for _, s := range got {
		count[s]--
		if count[s] < 0 {
			t.Fatalf("unexpected row %q", s)
		}
	}
}

func TestCompactorSnapshotEqualsFullReplay(t *testing.T) {
	path := walPath(t)
	w, err := OpenWAL(path, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillCommits(t, w, 4, 3)

	// Expected state: full replay before compaction.
	want := newTables(t)
	if _, err := RecoverTables(path, want, nil, "", true, RecoverHooks{}); err != nil {
		t.Fatal(err)
	}

	c := &Compactor{WAL: w}
	stats, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotSeq == 0 || stats.SegmentsRemoved == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	segs, _ := ListSegments(path)
	for _, sg := range segs {
		if sg.Seq <= stats.SnapshotSeq {
			t.Fatalf("covered segment %d survived compaction", sg.Seq)
		}
	}

	got := newTables(t)
	res, err := RecoverTables(path, got, nil, "", true, RecoverHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotSeq != stats.SnapshotSeq {
		t.Fatalf("recovered from snapshot %d, want %d", res.SnapshotSeq, stats.SnapshotSeq)
	}
	sameMultiset(t, dumpTables(got), dumpTables(want))
	w.Close()
}

func TestCompactorIsIncrementalAndPrunes(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{SegmentBytes: 1})
	fillCommits(t, w, 2, 2)
	c := &Compactor{WAL: w}
	if _, err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	fillCommits(t, w, 2, 2)
	stats, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	snaps, _ := ListSnapshots(path)
	if len(snaps) != 2 {
		t.Fatalf("kept %d snapshots, want 2 (new + fallback)", len(snaps))
	}
	fillCommits(t, w, 2, 2)
	if _, err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	snaps, _ = ListSnapshots(path)
	if len(snaps) != 2 {
		t.Fatalf("kept %d snapshots after third compaction, want 2", len(snaps))
	}
	_ = stats
	// Everything still recovers to 6 committed transactions of 2 logs each.
	got := newTables(t)
	if _, err := RecoverTables(path, got, nil, "", true, RecoverHooks{}); err != nil {
		t.Fatal(err)
	}
	if got.Logs.Len() != 12 {
		t.Fatalf("recovered %d log rows, want 12", got.Logs.Len())
	}
	w.Close()
}

func TestRecoverFallsBackFromCorruptSnapshot(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{SegmentBytes: 1})
	fillCommits(t, w, 3, 2)
	c := &Compactor{WAL: w, BeforeSegmentDelete: func() error {
		// Keep the segments so full replay stays possible.
		return os.ErrInvalid
	}}
	if _, err := c.Compact(); err == nil {
		t.Fatal("kill hook should abort compaction")
	}
	snaps, _ := ListSnapshots(path)
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	// Corrupt the snapshot; recovery must fall back to full segment replay.
	data, _ := os.ReadFile(snaps[0].Path)
	data[len(data)/2] ^= 0xFF
	os.WriteFile(snaps[0].Path, data, 0o644)

	got := newTables(t)
	res, err := RecoverTables(path, got, nil, "", true, RecoverHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotSeq != 0 {
		t.Fatalf("used corrupt snapshot (seq %d)", res.SnapshotSeq)
	}
	if got.Logs.Len() != 6 {
		t.Fatalf("recovered %d log rows, want 6", got.Logs.Len())
	}
	w.Close()
}

func TestSegmentSequencesNeverRestart(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{SegmentBytes: 1})
	fillCommits(t, w, 3, 1)
	c := &Compactor{WAL: w}
	stats, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Reopen after compaction deleted segments 1..N: new segments must
	// number past the snapshot's coverage or recovery would skip them.
	w2, err := OpenWAL(path, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillCommits(t, w2, 2, 1)
	segs, _ := ListSegments(path)
	if len(segs) == 0 || segs[0].Seq <= stats.SnapshotSeq {
		t.Fatalf("segments %v reuse sequences covered by snapshot %d", segs, stats.SnapshotSeq)
	}
	got := newTables(t)
	if _, err := RecoverTables(path, got, nil, "", true, RecoverHooks{}); err != nil {
		t.Fatal(err)
	}
	if got.Logs.Len() != 5 {
		t.Fatalf("recovered %d log rows, want 5", got.Logs.Len())
	}
	w2.Close()
}

func TestListNumberedIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flor.wal")
	os.WriteFile(path, nil, 0o644)
	os.WriteFile(path+".000000002", nil, 0o644)
	os.WriteFile(path+".snap.000000002", nil, 0o644)
	os.WriteFile(path+".snap.000000003.tmp", nil, 0o644)
	os.WriteFile(path+".bak", nil, 0o644)
	os.WriteFile(path+".00000000x", nil, 0o644)
	segs, err := ListSegments(path)
	if err != nil || len(segs) != 1 || segs[0].Seq != 2 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	snaps, err := ListSnapshots(path)
	if err != nil || len(snaps) != 1 || snaps[0].Seq != 2 {
		t.Fatalf("snapshots: %v %v", snaps, err)
	}
}

func TestReplaySegmentsDetectsGap(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{SegmentBytes: 1})
	fillCommits(t, w, 3, 1)
	w.Close()
	segs, _ := ListSegments(path)
	if len(segs) != 3 {
		t.Fatalf("segments = %d", len(segs))
	}
	os.Remove(segs[1].Path) // hole in the middle of history
	if _, err := ReplaySegments(path, 0, true, func(any) error { return nil }); err == nil {
		t.Fatal("segment gap must fail replay, not silently drop history")
	}
	got := newTables(t)
	if _, err := RecoverTables(path, got, nil, "", true, RecoverHooks{}); err == nil {
		t.Fatal("recovery across a segment gap must error")
	}
}

func TestRecoveryRefusesFallbackOverDeletedSegments(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{SegmentBytes: 1})
	fillCommits(t, w, 3, 2)
	c := &Compactor{WAL: w}
	stats, err := c.Compact() // segments 1..N deleted, snapshot N installed
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Bit rot hits the only snapshot: the covered segments are gone, so a
	// "fallback" would silently produce an empty database. It must error.
	data, _ := os.ReadFile(SnapshotPath(path, stats.SnapshotSeq))
	data[len(data)/2] ^= 0xFF
	os.WriteFile(SnapshotPath(path, stats.SnapshotSeq), data, 0o644)

	got := newTables(t)
	if _, err := RecoverTables(path, got, nil, "", true, RecoverHooks{}); err == nil {
		t.Fatal("recovery must refuse to silently lose compacted history")
	}
	// Compaction must refuse for the same reason (it would bake the loss
	// into a new snapshot and delete the evidence).
	w2, _ := OpenWAL(path, Options{SegmentBytes: 1})
	fillCommits(t, w2, 1, 1)
	if _, err := (&Compactor{WAL: w2}).Compact(); err == nil {
		t.Fatal("compaction must refuse to fold a partial database")
	}
	w2.Close()
}

func TestOpenWALSingleWriterLock(t *testing.T) {
	path := walPath(t)
	w, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path, Options{}); err == nil {
		t.Fatal("second concurrent open must fail: it would truncate the first session's in-flight records")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	w2.Close()
}
