package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"flordb/internal/record"
)

// EpochIndex is the in-memory epoch↔commit-timestamp map behind
// `AS OF TIMESTAMP` resolution. Every commit appends one stamp (the epoch the
// commit published and its wall-clock time); resolution binary-searches for
// the greatest epoch committed at or before the requested time. The index is
// persisted in snapshot meta (record.SnapshotMeta.Epochs) and rebuilt through
// WAL replay, which carries the commit wall clock in each commit record.
type EpochIndex struct {
	mu     sync.Mutex
	stamps []record.EpochStamp // ascending Epoch; nondecreasing Wall
}

// NewEpochIndex returns an empty index.
func NewEpochIndex() *EpochIndex { return &EpochIndex{} }

// Load replaces the index contents with stamps recovered from snapshot meta.
func (x *EpochIndex) Load(stamps []record.EpochStamp) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.stamps = append(x.stamps[:0], stamps...)
}

// Note records the wall-clock time of the commit that published epoch.
// Out-of-order or duplicate epochs are ignored; wall clocks are clamped to be
// nondecreasing so resolution can binary-search them even across a clock step.
func (x *EpochIndex) Note(epoch int64, wall time.Time) {
	w := wall.UnixNano()
	x.mu.Lock()
	defer x.mu.Unlock()
	if n := len(x.stamps); n > 0 {
		if epoch <= x.stamps[n-1].Epoch {
			return
		}
		if w < x.stamps[n-1].Wall {
			w = x.stamps[n-1].Wall
		}
	}
	x.stamps = append(x.stamps, record.EpochStamp{Epoch: epoch, Wall: w})
}

// Resolve returns the greatest epoch whose commit happened at or before ts.
// ok is false when ts precedes every retained stamp — the caller decides
// whether that means "the empty database at epoch 0" (nothing was ever
// committed or retired before ts) or an epoch below the retention floor.
func (x *EpochIndex) Resolve(ts time.Time) (epoch int64, ok bool) {
	w := ts.UnixNano()
	x.mu.Lock()
	defer x.mu.Unlock()
	i := sort.Search(len(x.stamps), func(i int) bool { return x.stamps[i].Wall > w })
	if i == 0 {
		return 0, false
	}
	return x.stamps[i-1].Epoch, true
}

// TrimBelow drops stamps for epochs below floor; the retention GC calls it so
// the persisted map stays bounded by the retention window.
func (x *EpochIndex) TrimBelow(floor int64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	i := sort.Search(len(x.stamps), func(i int) bool { return x.stamps[i].Epoch >= floor })
	if i > 0 {
		x.stamps = append(x.stamps[:0], x.stamps[i:]...)
	}
}

// Stamps returns a copy of the retained stamps, ascending by epoch — the
// value persisted into snapshot meta.
func (x *EpochIndex) Stamps() []record.EpochStamp {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]record.EpochStamp(nil), x.stamps...)
}

// RetentionManifest is the small durable sidecar recording the epoch
// retention floor chosen by the last GC run. Compaction reads it to fold
// retired versions out of the next snapshot, and recovery reads it so a
// restarted session refuses AS OF below the floor even before any
// post-GC snapshot exists.
type RetentionManifest struct {
	MinEpoch int64 `json:"min_epoch"`
}

// RetentionPath returns the manifest path for a WAL. The non-numeric suffix
// keeps it invisible to the segment/snapshot listings.
func RetentionPath(walPath string) string { return walPath + ".retention" }

// WriteRetention durably replaces the retention manifest: tmp file, fsync,
// rename, directory fsync — the same ordering discipline as snapshots.
func WriteRetention(walPath string, m RetentionManifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("storage: retention manifest: %w", err)
	}
	path := RetentionPath(walPath)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: retention manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: retention manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: retention manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: retention manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: retention manifest: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// ReadRetention loads the retention manifest; a missing file is a zero floor.
func ReadRetention(walPath string) (RetentionManifest, error) {
	var m RetentionManifest
	data, err := os.ReadFile(RetentionPath(walPath))
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("storage: retention manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("storage: retention manifest: %w", err)
	}
	return m, nil
}
