package storage

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The replication read API: sealed segments and snapshots are immutable
// files, so a (size, CRC-32C) pair fully identifies their contents. The
// shipping protocol (internal/repl) lists them with ListSegments /
// ListSnapshots, stamps each with FileCRC32C, and followers verify every
// fetched file with the same function before installing it.

// castagnoli is the CRC-32C polynomial table, matching the checksum the
// binary snapshot format already uses (internal/record/snapshot.go).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FileCRC32C returns the CRC-32C (Castagnoli) checksum and size of the file
// at path, streaming it through a bounded buffer.
func FileCRC32C(path string) (crc uint32, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("storage: crc open: %w", err)
	}
	defer f.Close()
	h := crc32.New(castagnoli)
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, 0, fmt.Errorf("storage: crc read %s: %w", path, err)
	}
	return h.Sum32(), n, nil
}

// CRC32C returns the CRC-32C (Castagnoli) checksum of a byte slice, for
// verifying fetched payloads against a manifest entry.
func CRC32C(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// SyncDir fsyncs a directory, making a just-renamed file's directory entry
// durable — the same ordering step the WAL and compactor use. Replication
// calls it after installing a fetched segment or snapshot.
func SyncDir(dir string) error {
	return syncDir(dir)
}

// LockProject takes the exclusive per-project advisory lock that OpenWAL
// would take, without opening the WAL for appending. Read-only replicas hold
// it so that two processes cannot concurrently install segments into — or
// one promote while another replicates into — the same project directory.
// Closing the returned handle releases the lock.
func LockProject(walPath string) (io.Closer, error) {
	return lockFile(walPath + ".lock")
}
