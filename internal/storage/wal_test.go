package storage

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"flordb/internal/record"
	"flordb/internal/relation"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "flor.wal")
}

func logRec(ts int64, name, val string) *record.LogRecord {
	return &record.LogRecord{Kind: record.KindLog, ProjID: "p", Tstamp: ts, Filename: "f", ValueName: name, Value: val, ValueType: record.VTText}
}

func commitRec(ts int64) *record.CommitRecord {
	return &record.CommitRecord{Kind: record.KindCommit, ProjID: "p", Tstamp: ts, VID: "v"}
}

func TestWALAppendFlushReplay(t *testing.T) {
	path := walPath(t)
	w, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(logRec(1, "x", "v")); err != nil {
			t.Fatal(err)
		}
	}
	if w.Pending() != 5 {
		t.Fatalf("pending = %d", w.Pending())
	}
	if err := w.AppendCommit(commitRec(2)); err != nil {
		t.Fatal(err)
	}
	if w.Pending() != 0 {
		t.Fatal("commit should clear pending")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var n int
	if err := Replay(path, false, func(rec any) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("replayed %d records", n)
	}
}

func TestReplayStrictCommitsHidesUncommittedTail(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{})
	w.Append(logRec(1, "a", "1"))
	w.AppendCommit(commitRec(2))
	w.Append(logRec(3, "b", "2")) // uncommitted
	w.Close()                     // close flushes but does not commit

	var committed, all int
	if err := Replay(path, true, func(rec any) error { committed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Replay(path, false, func(rec any) error { all++; return nil }); err != nil {
		t.Fatal(err)
	}
	if committed != 2 || all != 3 {
		t.Fatalf("committed=%d all=%d", committed, all)
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{})
	w.Append(logRec(1, "a", "1"))
	w.Close()
	// Simulate a crash mid-append: a torn partial line at the end.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"log","proj`)
	f.Close()

	var n int
	if err := Replay(path, false, func(rec any) error { n++; return nil }); err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d", n)
	}
}

func TestReplayRejectsMidLogCorruption(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{})
	w.Append(logRec(1, "a", "1"))
	w.Append(logRec(2, "b", "2"))
	w.Close()
	data, _ := os.ReadFile(path)
	// Corrupt the first line.
	data[2] = 0xFF
	os.WriteFile(path, data, 0o644)
	if err := Replay(path, false, func(rec any) error { return nil }); err == nil {
		t.Fatal("mid-log corruption must error")
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	if err := Replay(filepath.Join(t.TempDir(), "nope.wal"), false, func(any) error {
		t.Fatal("no records expected")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverIntoTables(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{})
	w.Append(logRec(1, "acc", "0.8"))
	w.Append(&record.LoopRecord{Kind: record.KindLoop, ProjID: "p", Tstamp: 1, Filename: "f", CtxID: 1, LoopName: "epoch"})
	w.Append(&record.ArgRecord{Kind: record.KindArg, ProjID: "p", Tstamp: 1, Filename: "f", Name: "lr", Value: "0.01"})
	w.AppendCommit(commitRec(5))
	w.Close()

	db := relation.NewDatabase()
	tables, err := record.CreateTables(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RecoverTables(path, tables, nil, "", true, RecoverHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 4 || res.MaxTstamp != 5 {
		t.Fatalf("applied=%d maxTs=%d", res.Applied, res.MaxTstamp)
	}
	if tables.Logs.Len() != 1 || tables.Loops.Len() != 1 || tables.Args.Len() != 1 {
		t.Fatal("tables not populated")
	}
	// The commit record carried a version id, so recovery materialized its
	// ts2vid row (full session semantics, unlike plain Tables.Apply).
	if tables.Ts2vid.Len() != 1 {
		t.Fatalf("ts2vid rows = %d, want 1", tables.Ts2vid.Len())
	}
}

func TestWALConcurrentAppend(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path, Options{NoSync: true})
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if err := w.Append(logRec(1, "x", "y")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	w.Close()
	var n int
	if err := Replay(path, false, func(any) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != workers*per {
		t.Fatalf("records = %d want %d", n, workers*per)
	}
}

func TestBlobStorePutGet(t *testing.T) {
	bs, err := NewBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, err := bs.Put([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	key2, err := bs.Put([]byte("hello"))
	if err != nil || key2 != key {
		t.Fatalf("idempotent put: %v %v", key2, err)
	}
	data, err := bs.Get(key)
	if err != nil || string(data) != "hello" {
		t.Fatalf("get: %q %v", data, err)
	}
	if !bs.Has(key) || bs.Has("deadbeef") {
		t.Fatal("Has semantics wrong")
	}
	if _, err := bs.Get("deadbeef"); err == nil {
		t.Fatal("missing blob must error")
	}
}

func TestBlobStoreIntegrityCheck(t *testing.T) {
	dir := t.TempDir()
	bs, _ := NewBlobStore(dir)
	key, _ := bs.Put([]byte("payload"))
	// Corrupt the stored file.
	path := filepath.Join(dir, key[:2], key[2:])
	os.WriteFile(path, []byte("tampered"), 0o644)
	if _, err := bs.Get(key); err == nil {
		t.Fatal("tampered blob must fail integrity check")
	}
}

func TestHashKeyDeterministic(t *testing.T) {
	if HashKey([]byte("a")) != HashKey([]byte("a")) {
		t.Fatal("hash must be deterministic")
	}
	if HashKey([]byte("a")) == HashKey([]byte("b")) {
		t.Fatal("different payloads must differ")
	}
}

func TestGroupCommitConcurrentCommitters(t *testing.T) {
	// N goroutines commit concurrently; every record must be durable and
	// replayable, and sealed segments (rotation races with the group) must
	// still end at commit boundaries.
	path := walPath(t)
	w, err := OpenWAL(path, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const writers, commitsPer = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < commitsPer; i++ {
				ts := int64(g*commitsPer + i)
				if err := w.Append(logRec(ts, "x", "v")); err != nil {
					t.Error(err)
					return
				}
				if err := w.AppendCommit(commitRec(ts)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if !w.TailCommitted() {
		t.Fatal("tail must be committed after all commits return")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var logs, commits int
	if _, err := ReplaySegments(path, 0, true, func(rec any) error {
		switch rec.(type) {
		case *record.LogRecord:
			logs++
		case *record.CommitRecord:
			commits++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if logs != writers*commitsPer || commits != writers*commitsPer {
		t.Fatalf("replayed %d logs / %d commits, want %d each", logs, commits, writers*commitsPer)
	}
	// Every sealed segment ends with a commit record (rotation only at
	// commit boundaries, even under concurrent group commit).
	segs, err := ListSegments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("expected rotation under a 4KiB segment size")
	}
	for _, sg := range segs {
		var last any
		if err := Replay(sg.Path, false, func(rec any) error { last = rec; return nil }); err != nil {
			t.Fatalf("segment %d: %v", sg.Seq, err)
		}
		if _, ok := last.(*record.CommitRecord); !ok {
			t.Fatalf("segment %d does not end with a commit record: %T", sg.Seq, last)
		}
	}
}

func TestGroupCommitSequentialStillDurable(t *testing.T) {
	// The single-committer fast path: each AppendCommit returns only after
	// its own record is flushed.
	path := walPath(t)
	w, err := OpenWAL(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.AppendCommit(commitRec(int64(i))); err != nil {
			t.Fatal(err)
		}
		if w.Pending() != 0 {
			t.Fatalf("commit %d left %d pending records", i, w.Pending())
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Replay(path, true, func(any) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("replayed %d records, want 10", n)
	}
}
