//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking advisory lock on path (creating
// it if needed). It returns the held file; closing it releases the lock.
func lockFile(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: project is locked by another session (flock %s): %w", path, err)
	}
	return f, nil
}
