//go:build !unix

package storage

import (
	"fmt"
	"os"
)

// lockFile on platforms without flock degrades to NO mutual exclusion: two
// sessions can open one project and destroy each other's uncommitted WAL
// tail. FlorDB's supported deployment platform is unix (see lock_unix.go);
// this fallback only keeps the package compiling elsewhere, and the file is
// still created so the layout matches.
func lockFile(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open lock file: %w", err)
	}
	return f, nil
}
