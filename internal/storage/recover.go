package storage

import (
	"fmt"
	"os"

	"flordb/internal/record"
	"flordb/internal/relation"
)

// ApplyRecovered applies one replayed WAL record to the tables with full
// session semantics: commit records that carry a version id materialize
// their ts2vid row, checkpoint records rehydrate obj_store from the blob
// store, and everything else is shredded by Tables.Apply. It returns the
// record's logical timestamp so callers can restore the version counter.
func ApplyRecovered(rec any, tables *record.Tables, blobs *BlobStore, rootTarget string) (int64, error) {
	switch r := rec.(type) {
	case *record.CommitRecord:
		if r.VID == "" {
			return r.Tstamp, nil
		}
		_, err := tables.Ts2vid.Insert(relation.Row{
			relation.Text(r.ProjID), relation.Int(r.Tstamp), relation.Int(r.Tstamp),
			relation.Text(r.VID), relation.Text(rootTarget),
		})
		return r.Tstamp, err
	case *record.CkptRecord:
		if blobs != nil && blobs.Has(r.BlobKey) {
			blob, err := blobs.Get(r.BlobKey)
			if err != nil {
				return r.Tstamp, err
			}
			return r.Tstamp, tables.PutBlob(r.ProjID, r.Tstamp, r.Filename, r.CtxID, r.Name, blob)
		}
		return r.Tstamp, nil
	case *record.LogRecord:
		return r.Tstamp, tables.Apply(rec)
	case *record.LoopRecord:
		return r.Tstamp, tables.Apply(rec)
	case *record.ArgRecord:
		return r.Tstamp, tables.Apply(rec)
	default:
		return 0, tables.Apply(rec)
	}
}

// RecoverResult reports what a snapshot-accelerated recovery did.
type RecoverResult struct {
	MaxTstamp   int64 // highest logical timestamp observed (snapshot + tail)
	Applied     int   // WAL records replayed after the snapshot
	SnapshotSeq int64 // segment sequence the loaded snapshot covers (0 = full replay)
	// ActiveCommittedLen is the committed prefix length of the active WAL
	// file; the session truncates the file to it so the uncommitted tail
	// cannot be resurrected by a later commit.
	ActiveCommittedLen int64
	// Meta is the meta block of the snapshot that was loaded (zero when
	// recovery fell back to a full replay): the epoch state a session must
	// restore before tail replay advances it further.
	Meta record.SnapshotMeta
}

// RecoverHooks lets the session observe epoch-relevant recovery events.
// Either hook may be nil.
type RecoverHooks struct {
	// AfterSnapshot fires once, after a base snapshot loads and before tail
	// replay begins. The session positions the MVCC epoch counter, the
	// retention floor, and the epoch↔timestamp map from the meta here, so
	// rows replayed from the tail are stamped with the epochs they were
	// originally committed under.
	AfterSnapshot func(meta record.SnapshotMeta)
	// OnCommit fires for each commit record replayed from the tail, after
	// the commit's records (the commit record included) were applied. The
	// session advances the MVCC epoch here — one epoch per commit record,
	// the same accounting the live commit path and replica apply use — so a
	// recovered database reaches exactly the epoch of the one that crashed.
	OnCommit func(rec *record.CommitRecord)
}

// loadNewestSnapshot loads the newest readable snapshot into tables,
// returning its coverage sequence and max tstamp (0, 0 when none loads).
// Unreadable or corrupt snapshots are skipped; ReadSnapshot validates the
// checksum and decodes fully before touching the tables, so a rejected
// snapshot leaves them empty and the fallback starts clean. newestSeq
// reports the coverage claimed by the newest snapshot *file*, loaded or not
// — callers must verify the segments filling the gap up to it still exist
// before trusting a fallback.
func loadNewestSnapshot(walPath string, tables *record.Tables) (meta record.SnapshotMeta, newestSeq int64, err error) {
	snaps, err := ListSnapshots(walPath)
	if err != nil {
		return meta, 0, err
	}
	if len(snaps) > 0 {
		newestSeq = snaps[len(snaps)-1].Seq
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(snaps[i].Path)
		if rerr != nil {
			continue
		}
		m, rerr := record.ReadSnapshot(data, tables)
		if rerr != nil {
			continue
		}
		return m, newestSeq, nil
	}
	return record.SnapshotMeta{}, newestSeq, nil
}

// RecoverTables rebuilds the tables from the newest valid snapshot plus the
// WAL tail (segments the snapshot does not cover, then the active file). A
// corrupt or unreadable snapshot falls back to the previous one, and finally
// to a full replay of every segment — but only when the segments covering
// the difference still exist; compaction deletes covered segments, so a
// fallback across deleted history is reported as an error rather than a
// silently shrunken database. When strict is true, records after the last
// commit in the stream are not applied.
func RecoverTables(walPath string, tables *record.Tables, blobs *BlobStore, rootTarget string, strict bool, hooks RecoverHooks) (RecoverResult, error) {
	var res RecoverResult
	meta, newestSeq, err := loadNewestSnapshot(walPath, tables)
	if err != nil {
		return res, err
	}
	seq := meta.Seq
	res.SnapshotSeq = seq
	res.MaxTstamp = meta.MaxTstamp
	res.Meta = meta
	if hooks.AfterSnapshot != nil {
		hooks.AfterSnapshot(meta)
	}
	if seq < newestSeq {
		// Fell back past the newest snapshot file: the records it covers are
		// only recoverable if the sealed segments through newestSeq survive
		// (ReplaySegments then checks they are gap-free from seq+1 onward).
		segs, err := ListSegments(walPath)
		if err != nil {
			return res, err
		}
		if len(segs) == 0 || segs[len(segs)-1].Seq < newestSeq {
			return res, fmt.Errorf("storage: snapshot covering segments 1..%d is unreadable and its segments were already compacted away; refusing to recover a partial database", newestSeq)
		}
	}
	tail, err := ReplaySegments(walPath, res.SnapshotSeq, strict, func(rec any) error {
		ts, err := ApplyRecovered(rec, tables, blobs, rootTarget)
		if err != nil {
			return err
		}
		res.Applied++
		if ts > res.MaxTstamp {
			res.MaxTstamp = ts
		}
		if cr, ok := rec.(*record.CommitRecord); ok && hooks.OnCommit != nil {
			hooks.OnCommit(cr)
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.ActiveCommittedLen = tail.ActiveCommittedLen
	return res, nil
}
