package storage

import (
	"os"
	"path/filepath"
	"testing"

	"flordb/internal/record"
	"flordb/internal/relation"
)

// FuzzWALReplay writes arbitrary bytes as a WAL file and replays it in both
// commit-visibility modes: replay must never panic, strict replay must never
// deliver more records than non-strict, and a WAL built from real encoded
// records must replay losslessly.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real WAL: records, a commit, an uncommitted tail, and a
	// torn final line.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.wal")
	w, err := OpenWAL(seedPath, Options{})
	if err != nil {
		f.Fatal(err)
	}
	w.Append(&record.LogRecord{Kind: record.KindLog, ProjID: "p", Tstamp: 1, Filename: "f", ValueName: "acc", Value: "0.9", ValueType: record.VTFloat})
	w.Append(&record.LoopRecord{Kind: record.KindLoop, ProjID: "p", Tstamp: 1, Filename: "f", CtxID: 1, LoopName: "epoch"})
	w.AppendCommit(&record.CommitRecord{Kind: record.KindCommit, ProjID: "p", Tstamp: 2, VID: "v1"})
	w.Append(&record.ArgRecord{Kind: record.KindArg, ProjID: "p", Tstamp: 3, Filename: "f", Name: "lr", Value: "0.1"})
	w.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(append(append([]byte(nil), seed...), []byte(`{"kind":"log","proj`)...)) // torn tail
	f.Add([]byte("\n\n  \n"))
	f.Add([]byte(`{"kind":"commit","tstamp":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var all, committed int
		errAll := Replay(path, false, func(rec any) error { all++; return nil })
		errStrict := Replay(path, true, func(rec any) error { committed++; return nil })
		if (errAll == nil) != (errStrict == nil) {
			t.Fatalf("visibility mode changed error-ness: all=%v strict=%v", errAll, errStrict)
		}
		if errAll == nil && committed > all {
			t.Fatalf("strict replay delivered more records (%d) than non-strict (%d)", committed, all)
		}
		// The segmented entry point must agree with single-file replay on a
		// single-file log.
		var segAll int
		_, errSeg := ReplaySegments(path, 0, false, func(rec any) error { segAll++; return nil })
		if (errSeg == nil) != (errAll == nil) || (errSeg == nil && segAll != all) {
			t.Fatalf("ReplaySegments diverged: n=%d err=%v vs n=%d err=%v", segAll, errSeg, all, errAll)
		}
		// Whatever replays must also apply: recovery into tables must not
		// panic either.
		if errAll == nil {
			tables, err := record.CreateTables(relation.NewDatabase())
			if err != nil {
				t.Fatal(err)
			}
			_, _ = RecoverTables(path, tables, nil, "", true, RecoverHooks{})
		}
	})
}
