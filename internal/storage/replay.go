package storage

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"flordb/internal/record"
)

// replayState threads commit-visibility semantics through a multi-file
// replay. In strict mode, records are held back until the commit that makes
// them visible arrives; memory is bounded by the size of one uncommitted
// transaction, never by the log.
type replayState struct {
	strict bool
	fn     func(rec any) error
	buf    []any // records since the last commit (strict mode only)
}

func (st *replayState) emit(rec any) error {
	if !st.strict {
		return st.fn(rec)
	}
	st.buf = append(st.buf, rec)
	if _, isCommit := rec.(*record.CommitRecord); !isCommit {
		return nil
	}
	for _, r := range st.buf {
		if err := st.fn(r); err != nil {
			return err
		}
	}
	st.buf = st.buf[:0]
	return nil
}

// replayFile streams every decodable record of one WAL file to st, reading
// through a bounded bufio.Reader so replaying a multi-GB log never buffers
// the whole file. tornOK marks the final file of a stream, whose last line
// may be torn by a crash mid-write; a torn line followed by anything but
// whitespace — and any undecodable line in a non-final file — is corruption.
// It returns the byte offset just past the last commit record in the file
// (0 if the file holds none), which recovery uses to truncate the
// uncommitted tail of the active file.
func replayFile(path string, tornOK bool, st *replayState) (committedLen int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		if tornOK {
			return 0, nil
		}
		return 0, fmt.Errorf("storage: missing wal segment %s", path)
	}
	if err != nil {
		return 0, fmt.Errorf("storage: open for replay: %w", err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	line := 0
	for {
		chunk, rerr := br.ReadBytes('\n')
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return 0, fmt.Errorf("storage: read wal: %w", rerr)
		}
		content := bytes.TrimSpace(chunk)
		if len(content) > 0 {
			line++
			if terminated := chunk[len(chunk)-1] == '\n'; !terminated {
				// A record is durable only once its terminating newline is
				// on disk: an unterminated final line is a torn append even
				// when the JSON happens to parse (and appending after a
				// truncation there would otherwise fuse two records).
				if tornOK {
					return committedLen, nil
				}
				return 0, fmt.Errorf("storage: torn record at end of sealed segment %s line %d", path, line)
			}
			rec, derr := record.Decode(content)
			if derr != nil {
				if tornOK && restIsWhitespace(br) {
					// Crash mid-append: tolerate and stop before the torn line.
					return committedLen, nil
				}
				return 0, fmt.Errorf("storage: corrupt wal record at %s line %d: %w", path, line, derr)
			}
			if err := st.emit(rec); err != nil {
				return 0, err
			}
			if _, isCommit := rec.(*record.CommitRecord); isCommit {
				committedLen = off + int64(len(chunk))
			}
		}
		off += int64(len(chunk))
		if rerr != nil {
			return committedLen, nil
		}
	}
}

// restIsWhitespace reports whether everything left in the reader is
// whitespace — i.e. whether a decode failure hit the torn final line rather
// than corruption in the middle of the log.
func restIsWhitespace(br *bufio.Reader) bool {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return true
		}
		switch b {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
}

// Replay streams every decodable record in the single WAL file at path to
// fn, in order. A torn final line (crash mid-write) is tolerated and
// skipped; corruption in the middle of the log is an error. Commit records
// delimit transactions: when strictCommits is true, records after the last
// commit are not delivered (uncommitted tail is invisible), matching
// flor.commit() visibility semantics.
func Replay(path string, strictCommits bool, fn func(rec any) error) error {
	st := &replayState{strict: strictCommits, fn: fn}
	_, err := replayFile(path, true, st)
	return err
}

// TailStats describes the active file's commit boundary after a replay.
type TailStats struct {
	// ActiveCommittedLen is the length of the committed prefix of the active
	// file: the byte offset just past its last commit record, or 0 when the
	// active file holds no commit. Everything after it is the uncommitted
	// (possibly torn) tail.
	ActiveCommittedLen int64
}

// ReplaySegments replays the segmented WAL rooted at walPath as one logical
// stream: sealed segments with sequence > afterSeq in ascending order, then
// the active file. strictCommits applies across the whole stream — a record
// near the end of one segment is made visible by a commit early in the next.
//
// Segments above afterSeq must be contiguous starting at afterSeq+1: a gap
// means history the caller's snapshot does not cover was deleted (normally
// by a compaction under a newer snapshot that failed to load), and replaying
// around it would silently drop committed data, so it is an error instead.
func ReplaySegments(walPath string, afterSeq int64, strictCommits bool, fn func(rec any) error) (TailStats, error) {
	segs, err := ListSegments(walPath)
	if err != nil {
		return TailStats{}, err
	}
	st := &replayState{strict: strictCommits, fn: fn}
	expect := afterSeq + 1
	for _, sg := range segs {
		if sg.Seq <= afterSeq {
			continue
		}
		if sg.Seq != expect {
			return TailStats{}, fmt.Errorf("storage: wal segment gap: next sealed segment is %d, want %d — history after snapshot %d is incomplete", sg.Seq, expect, afterSeq)
		}
		expect++
		if _, err := replayFile(sg.Path, false, st); err != nil {
			return TailStats{}, err
		}
	}
	committedLen, err := replayFile(walPath, true, st)
	if err != nil {
		return TailStats{}, err
	}
	return TailStats{ActiveCommittedLen: committedLen}, nil
}

// ReplaySealedSegment replays one sealed segment file in strict commit mode.
// Rotation only happens at commit boundaries, so a sealed segment always ends
// with a commit record; a torn final line or a leftover uncommitted suffix
// means the file is truncated or tampered with and is an error, never
// silently skipped. Replication uses this to apply a shipped segment into a
// replica's tables.
func ReplaySealedSegment(path string, fn func(rec any) error) error {
	st := &replayState{strict: true, fn: fn}
	if _, err := replayFile(path, false, st); err != nil {
		return err
	}
	if len(st.buf) > 0 {
		return fmt.Errorf("storage: sealed segment %s ends with %d uncommitted record(s); refusing to apply", path, len(st.buf))
	}
	return nil
}

// replaySealed replays only the sealed segments in (afterSeq, uptoSeq] —
// what compaction folds into a snapshot. Every sealed segment ends with a
// commit record (rotation happens only at commit boundaries), so a leftover
// uncommitted suffix means the segment files were tampered with; compaction
// must not build a snapshot that silently drops it.
func replaySealed(walPath string, afterSeq, uptoSeq int64, fn func(rec any) error) error {
	segs, err := ListSegments(walPath)
	if err != nil {
		return err
	}
	st := &replayState{strict: true, fn: fn}
	expect := afterSeq + 1
	for _, sg := range segs {
		if sg.Seq <= afterSeq || sg.Seq > uptoSeq {
			continue
		}
		if sg.Seq != expect {
			return fmt.Errorf("storage: wal segment gap: next sealed segment is %d, want %d — refusing to compact over missing history", sg.Seq, expect)
		}
		expect++
		if _, err := replayFile(sg.Path, false, st); err != nil {
			return err
		}
	}
	if len(st.buf) > 0 {
		return fmt.Errorf("storage: sealed segments end with %d uncommitted record(s); refusing to compact", len(st.buf))
	}
	return nil
}
