// Package storage provides durability for FlorDB's metadata: an append-only
// write-ahead log of JSONL records with group commit and size-based
// segmentation, table snapshots that cover a WAL prefix, and recovery that
// rebuilds the relational tables from the newest snapshot plus the WAL tail.
//
// The paper's flor.commit() is realized here as a WAL flush boundary: a
// commit record is appended and the file is synced, making everything up to
// the commit visible to future sessions (§2.1 "application-level transaction
// commit marker supporting visibility control").
//
// File layout (all next to the active WAL file, typically <dir>/.flor):
//
//	flor.wal                  active segment, the only file ever appended to
//	flor.wal.000000001        sealed segments, immutable, ascending sequence
//	flor.wal.snap.000000004   table snapshot covering segments 1..4
//
// Crash-ordering invariants:
//
//  1. Rotation happens only at a commit boundary, so every sealed segment
//     ends with a commit record. The uncommitted tail of the log therefore
//     lives entirely in the active file, where recovery can truncate it.
//  2. Snapshots are written to a temp file, fsynced, and renamed into place
//     before any covered segment is deleted; a crash at any point leaves
//     either the old state (snapshot absent, segments intact) or the new
//     state (snapshot present, segments redundant but harmless).
//  3. Recovery skips segments a loaded snapshot covers; replaying a covered
//     segment never happens, so the delete in compaction is pure space
//     reclamation, not a correctness step.
package storage

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"flordb/internal/record"
)

// DefaultSegmentBytes is the rotation threshold sessions use when the caller
// does not choose one: large enough that small projects keep a single file,
// small enough that compaction of a long history reclaims space in chunks.
const DefaultSegmentBytes = 64 << 20

// WAL is an append-only record log. Appends are buffered; Flush writes and
// syncs. The active file rotates into sealed, numbered segments at commit
// boundaries once it exceeds the segment size. Safe for concurrent use.
//
// Commits use group commit: AppendCommit appends the commit record under the
// short append lock and then waits for a flush+fsync covering it. One waiter
// at a time is elected leader and performs a single fsync; every commit
// appended before the leader flushed rides that fsync, so N concurrent
// committers cost ~1 fsync per batch instead of N.
type WAL struct {
	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	lock      *os.File // held flock; single-writer exclusion across processes
	path      string
	pending   int   // records buffered since last flush
	sync      bool  // fsync on flush
	segBytes  int64 // rotation threshold; 0 disables rotation
	size      int64 // logical bytes appended to the active file (incl. buffered)
	committed int64 // logical size as of the last appended commit record
	nextSeq   int64 // sequence number the next sealed segment will take
	gen       int64 // active-file generation; rotation increments it
	// dirUnsynced records a failed post-rotation directory fsync so the next
	// commit retries it; until then the rename (and the new active file's
	// dir entry) may not survive a power loss.
	dirUnsynced bool

	// Group-commit state, guarded by gcMu (never held while doing IO and
	// never acquired while holding mu except in Truncate, whose one-way
	// mu->gcMu nesting cannot deadlock against the gcMu->nothing order used
	// everywhere else).
	gcMu   sync.Mutex
	gcCond *sync.Cond
	gcBusy bool  // a leader is flushing
	gcGen  int64 // generation the durable prefix below refers to
	gcOff  int64 // bytes of gcGen proven flushed+fsynced

	syncs   atomic.Int64 // fsyncs performed; group-commit observability
	commits atomic.Int64 // commit records appended; feeds the fsyncs/commit gauge
}

// Options configures WAL behavior.
type Options struct {
	// NoSync disables fsync on flush; used by benchmarks to isolate
	// serialization cost from disk cost.
	NoSync bool
	// SegmentBytes rotates the active file into a sealed segment once it
	// reaches this size at a commit boundary. 0 disables rotation (the WAL
	// stays a single file, as before segmentation existed).
	SegmentBytes int64
}

// OpenWAL opens (creating if needed) the WAL at path for appending. An
// exclusive advisory lock on <path>.lock enforces a single session per
// project across processes: every session both truncates (recovery drops
// the uncommitted tail) and appends, so a second concurrent opener would
// silently destroy the first one's in-flight records. A held lock makes
// OpenWAL fail fast instead.
func OpenWAL(path string, opts Options) (*WAL, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir: %w", err)
	}
	lock, err := lockFile(path + ".lock")
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		lock.Close()
		return nil, fmt.Errorf("storage: stat wal: %w", err)
	}
	// Sequence numbers never restart: a snapshot claims to cover segments
	// 1..Seq, so a new segment must number past both the surviving segments
	// and the newest snapshot (whose covered segments compaction deleted).
	segs, err := ListSegments(path)
	if err != nil {
		f.Close()
		lock.Close()
		return nil, err
	}
	snaps, err := ListSnapshots(path)
	if err != nil {
		f.Close()
		lock.Close()
		return nil, err
	}
	nextSeq := int64(1)
	if len(segs) > 0 {
		nextSeq = segs[len(segs)-1].Seq + 1
	}
	if len(snaps) > 0 && snaps[len(snaps)-1].Seq >= nextSeq {
		nextSeq = snaps[len(snaps)-1].Seq + 1
	}
	w := &WAL{
		f: f, w: bufio.NewWriterSize(f, 1<<16), lock: lock, path: path,
		sync: !opts.NoSync, segBytes: opts.SegmentBytes,
		size: st.Size(), committed: st.Size(), nextSeq: nextSeq,
	}
	w.gcCond = sync.NewCond(&w.gcMu)
	return w, nil
}

// Path returns the active WAL file path.
func (w *WAL) Path() string { return w.path }

// Append buffers one record. It does not flush; call Flush (or append a
// commit record via AppendCommit) to make the record durable.
func (w *WAL) Append(rec any) error {
	line, err := record.Encode(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(line)
}

func (w *WAL) appendLocked(line []byte) error {
	if _, err := w.w.Write(line); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	w.size += int64(len(line)) + 1
	w.pending++
	return nil
}

// Flush writes buffered records to the OS and, unless NoSync was set, fsyncs.
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *WAL) flushLocked() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("storage: sync: %w", err)
		}
		w.syncs.Add(1)
	}
	w.pending = 0
	return nil
}

// SyncCount reports how many fsyncs the WAL has performed. With group
// commit, N concurrent committers should advance it by ~1 per batch, not N;
// C13 reports the ratio.
func (w *WAL) SyncCount() int64 { return w.syncs.Load() }

// CommitCount reports how many commit records this WAL has appended since
// open. fsyncs/commit — SyncCount over CommitCount — is the group-commit
// efficiency figure /metrics and macrobench report: 1.0 means every commit
// paid its own fsync, lower means committers coalesced.
func (w *WAL) CommitCount() int64 { return w.commits.Load() }

// AppendCommit appends a commit record and waits until it is durable — the
// commit point. Concurrent callers coalesce: the record is appended under
// the short append lock, then one caller is elected group-commit leader and
// performs a single flush+fsync covering every commit appended so far. If
// the active file has reached the segment size the leader rotates it
// afterward, so sealed segments always end with a commit record.
func (w *WAL) AppendCommit(rec *record.CommitRecord) error {
	line, err := record.Encode(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	if err := w.appendLocked(line); err != nil {
		w.mu.Unlock()
		return err
	}
	w.committed = w.size
	gen, target := w.gen, w.size
	w.mu.Unlock()
	w.commits.Add(1)
	return w.syncCommitted(gen, target)
}

// gcCovered reports whether a durable prefix (sGen, sOff) covers an append
// at (gen, off). A later generation covers every earlier one: rotation only
// happens after the old generation was fully flushed and fsynced.
func gcCovered(sGen, sOff, gen, off int64) bool {
	return sGen > gen || (sGen == gen && sOff >= off)
}

// syncCommitted blocks until a flush+fsync covering offset target of
// generation gen has completed. The first waiter not covered by the durable
// prefix becomes leader, performs the IO for everyone, publishes the new
// prefix, and retries rotation and a pending directory sync.
func (w *WAL) syncCommitted(gen, target int64) error {
	for {
		w.gcMu.Lock()
		for !gcCovered(w.gcGen, w.gcOff, gen, target) && w.gcBusy {
			w.gcCond.Wait()
		}
		if gcCovered(w.gcGen, w.gcOff, gen, target) {
			w.gcMu.Unlock()
			return nil
		}
		w.gcBusy = true
		w.gcMu.Unlock()

		// Leader round: flush + fsync everything appended so far. The
		// capture happens before rotation, so the published prefix describes
		// the generation the waiters appended into.
		w.mu.Lock()
		err := w.flushLocked()
		sGen, sOff := w.gen, w.size
		if err == nil {
			if w.dirUnsynced && w.sync {
				//florvet:ignore lockfsync w.mu IS the flush-serialization point of group commit; the leader holds it for the whole IO round by design
				if derr := syncDir(filepath.Dir(w.path)); derr != nil {
					err = derr
				} else {
					w.dirUnsynced = false
				}
			}
			if err == nil && w.segBytes > 0 && w.size >= w.segBytes {
				// Rotation is space management, not part of the commit
				// contract: the commit record is already durable, so a
				// rotation failure must not make AppendCommit report failure
				// (a caller would retry the committed transaction and
				// duplicate it). The next commit — or an explicit Seal,
				// which does surface errors — retries.
				_, _ = w.rotateLocked()
			}
		}
		w.mu.Unlock()

		w.gcMu.Lock()
		w.gcBusy = false
		if err == nil && gcCovered(sGen, sOff, w.gcGen, w.gcOff) {
			w.gcGen, w.gcOff = sGen, sOff
		}
		done := err == nil && gcCovered(w.gcGen, w.gcOff, gen, target)
		w.gcCond.Broadcast()
		w.gcMu.Unlock()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		// Our append postdates the state the leader flushed (possible only
		// when we inherited leadership mid-round); go around again.
	}
}

// Seal flushes and rotates the active file into a sealed segment regardless
// of the size threshold. It returns the sealed segment's sequence number, or
// 0 when there was nothing safe to seal: an empty active file, or an
// uncommitted tail (from a transaction in flight on another goroutine) that
// must stay in the active file so recovery can truncate it.
func (w *WAL) Seal() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.flushLocked(); err != nil {
		return 0, err
	}
	return w.rotateLocked()
}

// rotateLocked seals the active file when it is non-empty and fully
// committed; otherwise it is a no-op returning sequence 0. The rename
// happens with the old file still open (the fd follows the inode), so a
// failure at any step leaves the WAL with a usable handle — rotation can
// fail, but it never poisons the log.
func (w *WAL) rotateLocked() (int64, error) {
	if w.size == 0 || w.committed != w.size {
		return 0, nil
	}
	seq := w.nextSeq
	segPath := SegmentPath(w.path, seq)
	if err := os.Rename(w.path, segPath); err != nil {
		return 0, fmt.Errorf("storage: rotate: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Undo so the sealed name only ever holds segments the writer has
		// abandoned; the still-open handle keeps appending to the original
		// file either way.
		if rerr := os.Rename(segPath, w.path); rerr != nil {
			return 0, fmt.Errorf("storage: rotate reopen failed (%v) and undo rename failed: %w", err, rerr)
		}
		return 0, fmt.Errorf("storage: rotate: reopen: %w", err)
	}
	old := w.f
	w.f = f
	w.w.Reset(f)
	w.size, w.committed = 0, 0
	w.gen++
	w.nextSeq++
	// The sealed data was already flushed (and fsynced when sync is on)
	// before rotation was attempted; a close error on the old fd loses
	// nothing.
	_ = old.Close()
	if w.sync {
		// Make the rename durable. On failure the in-memory and on-disk
		// states are still individually consistent (recovery handles both
		// the pre- and post-rename layouts), so report without undoing and
		// let the next commit retry the directory sync.
		if err := syncDir(filepath.Dir(w.path)); err != nil {
			w.dirUnsynced = true
			return seq, err
		}
	}
	return seq, nil
}

// Truncate discards everything past off in the active file. Recovery uses it
// to drop a torn or uncommitted tail before any new record is appended, so a
// later commit cannot resurrect records that were not durable.
func (w *WAL) Truncate(off int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.flushLocked(); err != nil {
		return err
	}
	if off > w.size {
		return fmt.Errorf("storage: truncate beyond end (%d > %d)", off, w.size)
	}
	if off < w.size {
		if err := w.f.Truncate(off); err != nil {
			return fmt.Errorf("storage: truncate: %w", err)
		}
		if w.sync {
			//florvet:ignore lockfsync recovery-time truncation: nothing serves during recovery, and the shortened size must not be observable before the fsync lands
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("storage: truncate sync: %w", err)
			}
		}
	}
	w.size, w.committed = off, off
	// The durable prefix must not claim coverage past the new end, or a
	// later commit below the old offset would skip its fsync.
	w.gcMu.Lock()
	if w.gcGen == w.gen && w.gcOff > off {
		w.gcOff = off
	}
	w.gcMu.Unlock()
	return nil
}

// Pending reports how many records are buffered but not yet flushed.
func (w *WAL) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending
}

// Close flushes and closes the file, releasing the project lock.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.flushLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if w.lock != nil {
		if lerr := w.lock.Close(); err == nil {
			err = lerr
		}
		w.lock = nil
	}
	return err
}

// TailCommitted reports whether everything appended so far is covered by a
// commit record — i.e. the active file has no uncommitted tail.
func (w *WAL) TailCommitted() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.committed == w.size
}

// Segment is one sealed, immutable WAL segment.
type Segment struct {
	Seq  int64
	Path string
}

// SegmentPath returns the path of the sealed segment with the given sequence
// number for the WAL at walPath.
func SegmentPath(walPath string, seq int64) string {
	return fmt.Sprintf("%s.%09d", walPath, seq)
}

// SnapshotPath returns the path of the snapshot covering segments 1..seq for
// the WAL at walPath.
func SnapshotPath(walPath string, seq int64) string {
	return fmt.Sprintf("%s.snap.%09d", walPath, seq)
}

// ListSegments returns the sealed segments of the WAL at walPath in
// ascending sequence order. The active file is not included.
func ListSegments(walPath string) ([]Segment, error) {
	return listNumbered(walPath, "", func(seq int64, path string) Segment {
		return Segment{Seq: seq, Path: path}
	})
}

// SnapshotFile is one durable table snapshot next to the WAL.
type SnapshotFile struct {
	Seq  int64 // highest segment sequence the snapshot covers
	Path string
}

// ListSnapshots returns the snapshots next to the WAL at walPath in
// ascending coverage order (newest last).
func ListSnapshots(walPath string) ([]SnapshotFile, error) {
	return listNumbered(walPath, "snap.", func(seq int64, path string) SnapshotFile {
		return SnapshotFile{Seq: seq, Path: path}
	})
}

// listNumbered collects files named <walPath>.<kind><9 digits>, sorted by the
// numeric suffix.
func listNumbered[T any](walPath, kind string, mk func(int64, string) T) ([]T, error) {
	dir, base := filepath.Split(walPath)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: list wal files: %w", err)
	}
	prefix := base + "." + kind
	type numbered struct {
		seq int64
		val T
	}
	var out []numbered
	for _, e := range entries {
		name := e.Name()
		suffix, ok := strings.CutPrefix(name, prefix)
		if !ok || len(suffix) != 9 {
			continue
		}
		seq, err := strconv.ParseInt(suffix, 10, 64)
		if err != nil || seq <= 0 {
			continue
		}
		out = append(out, numbered{seq: seq, val: mk(seq, filepath.Join(dir, name))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	vals := make([]T, len(out))
	for i, n := range out {
		vals[i] = n.val
	}
	return vals, nil
}

// syncDir fsyncs a directory so renames and deletes within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	return nil
}
