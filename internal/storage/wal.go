// Package storage provides durability for FlorDB's metadata: an append-only
// write-ahead log of JSONL records with group commit, plus recovery that
// replays the log into the relational tables at startup.
//
// The paper's flor.commit() is realized here as a WAL flush boundary: a
// commit record is appended and the file is synced, making everything up to
// the commit visible to future sessions (§2.1 "application-level transaction
// commit marker supporting visibility control").
package storage

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"flordb/internal/record"
)

// WAL is an append-only record log. Appends are buffered; Flush writes and
// syncs. Safe for concurrent use.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	path    string
	pending int  // records buffered since last flush
	sync    bool // fsync on flush
}

// Options configures WAL behavior.
type Options struct {
	// NoSync disables fsync on flush; used by benchmarks to isolate
	// serialization cost from disk cost.
	NoSync bool
}

// OpenWAL opens (creating if needed) the WAL at path for appending.
func OpenWAL(path string, opts Options) (*WAL, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	return &WAL{f: f, w: bufio.NewWriterSize(f, 1<<16), path: path, sync: !opts.NoSync}, nil
}

// Path returns the WAL file path.
func (w *WAL) Path() string { return w.path }

// Append buffers one record. It does not flush; call Flush (or append a
// commit record via AppendCommit) to make the record durable.
func (w *WAL) Append(rec any) error {
	line, err := record.Encode(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.Write(line); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	w.pending++
	return nil
}

// Flush writes buffered records to the OS and, unless NoSync was set, fsyncs.
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *WAL) flushLocked() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("storage: sync: %w", err)
		}
	}
	w.pending = 0
	return nil
}

// AppendCommit appends a commit record and flushes — the durable point.
func (w *WAL) AppendCommit(rec *record.CommitRecord) error {
	if err := w.Append(rec); err != nil {
		return err
	}
	return w.Flush()
}

// Pending reports how many records are buffered but not yet flushed.
func (w *WAL) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending
}

// Close flushes and closes the file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.flushLocked(); err != nil {
		return err
	}
	return w.f.Close()
}

// Replay streams every decodable record in the WAL at path to fn, in order.
// A torn final line (crash mid-write) is tolerated and skipped; corruption
// in the middle of the log is an error. Commit records delimit transactions:
// when strictCommits is true, records after the last commit are not
// delivered (uncommitted tail is invisible), matching flor.commit()
// visibility semantics.
func Replay(path string, strictCommits bool, fn func(rec any) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: open for replay: %w", err)
	}
	defer f.Close()

	data, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("storage: read wal: %w", err)
	}
	lines := bytes.Split(data, []byte{'\n'})
	// Determine the last commit position when strict.
	lastCommit := -1
	type parsed struct {
		rec any
		ok  bool
	}
	records := make([]parsed, len(lines))
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec, err := record.Decode(line)
		if err != nil {
			// Only the final non-empty line may be torn.
			if isLastContent(lines, i) {
				break
			}
			return fmt.Errorf("storage: corrupt wal record at line %d: %w", i+1, err)
		}
		records[i] = parsed{rec: rec, ok: true}
		if _, isCommit := rec.(*record.CommitRecord); isCommit {
			lastCommit = i
		}
	}
	for i, p := range records {
		if !p.ok {
			continue
		}
		if strictCommits && i > lastCommit {
			break
		}
		if err := fn(p.rec); err != nil {
			return err
		}
	}
	return nil
}

func isLastContent(lines [][]byte, i int) bool {
	for j := i + 1; j < len(lines); j++ {
		if len(bytes.TrimSpace(lines[j])) != 0 {
			return false
		}
	}
	return true
}

// Recover replays the WAL into the given tables. It returns the highest
// tstamp seen and the number of records applied.
func Recover(path string, tables *record.Tables, strictCommits bool) (maxTstamp int64, applied int, err error) {
	err = Replay(path, strictCommits, func(rec any) error {
		if err := tables.Apply(rec); err != nil {
			return err
		}
		applied++
		switch r := rec.(type) {
		case *record.LogRecord:
			if r.Tstamp > maxTstamp {
				maxTstamp = r.Tstamp
			}
		case *record.LoopRecord:
			if r.Tstamp > maxTstamp {
				maxTstamp = r.Tstamp
			}
		case *record.ArgRecord:
			if r.Tstamp > maxTstamp {
				maxTstamp = r.Tstamp
			}
		case *record.CommitRecord:
			if r.Tstamp > maxTstamp {
				maxTstamp = r.Tstamp
			}
		}
		return nil
	})
	return maxTstamp, applied, err
}
