package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// BlobStore is a content-addressed file store used for checkpoint blobs
// (the durable half of obj_store) and shared with the vcs object store
// layout: blobs live at <root>/<aa>/<rest-of-hash>. It needs no mutex:
// writes land in a unique temp file and are published by atomic rename,
// so concurrent Puts of the same key just install identical bytes.
type BlobStore struct {
	root string
}

// NewBlobStore creates the store rooted at dir.
func NewBlobStore(dir string) (*BlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: blobstore mkdir: %w", err)
	}
	return &BlobStore{root: dir}, nil
}

// Root returns the store's directory.
func (b *BlobStore) Root() string { return b.root }

// HashKey computes the content address for a payload.
func HashKey(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Put writes the payload and returns its content address. Writing is
// idempotent: existing blobs are left untouched.
func (b *BlobStore) Put(data []byte) (string, error) {
	key := HashKey(data)
	path := b.pathFor(key)
	if _, err := os.Stat(path); err == nil {
		return key, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("storage: blob mkdir: %w", err)
	}
	// A unique temp name per writer keeps concurrent Puts of the same key
	// from clobbering each other's staging file; the rename is atomic and
	// both sides carry identical bytes, so whichever lands last wins
	// harmlessly. This also keeps blob IO outside any lock (lockfsync).
	tmp, err := os.CreateTemp(filepath.Dir(path), ".blob-*.tmp")
	if err != nil {
		return "", fmt.Errorf("storage: blob tmp: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("storage: blob write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("storage: blob close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("storage: blob rename: %w", err)
	}
	return key, nil
}

// Get reads the payload at the given content address.
func (b *BlobStore) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(b.pathFor(key))
	if err != nil {
		return nil, fmt.Errorf("storage: blob %s: %w", key, err)
	}
	if HashKey(data) != key {
		return nil, fmt.Errorf("storage: blob %s failed integrity check", key)
	}
	return data, nil
}

// Has reports whether the store holds the given key.
func (b *BlobStore) Has(key string) bool {
	_, err := os.Stat(b.pathFor(key))
	return err == nil
}

func (b *BlobStore) pathFor(key string) string {
	if len(key) < 3 {
		return filepath.Join(b.root, "short", key)
	}
	return filepath.Join(b.root, key[:2], key[2:])
}
