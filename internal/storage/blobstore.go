package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// BlobStore is a content-addressed file store used for checkpoint blobs
// (the durable half of obj_store) and shared with the vcs object store
// layout: blobs live at <root>/<aa>/<rest-of-hash>.
type BlobStore struct {
	mu   sync.Mutex
	root string
}

// NewBlobStore creates the store rooted at dir.
func NewBlobStore(dir string) (*BlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: blobstore mkdir: %w", err)
	}
	return &BlobStore{root: dir}, nil
}

// Root returns the store's directory.
func (b *BlobStore) Root() string { return b.root }

// HashKey computes the content address for a payload.
func HashKey(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Put writes the payload and returns its content address. Writing is
// idempotent: existing blobs are left untouched.
func (b *BlobStore) Put(data []byte) (string, error) {
	key := HashKey(data)
	path := b.pathFor(key)
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := os.Stat(path); err == nil {
		return key, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("storage: blob mkdir: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("storage: blob write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("storage: blob rename: %w", err)
	}
	return key, nil
}

// Get reads the payload at the given content address.
func (b *BlobStore) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(b.pathFor(key))
	if err != nil {
		return nil, fmt.Errorf("storage: blob %s: %w", key, err)
	}
	if HashKey(data) != key {
		return nil, fmt.Errorf("storage: blob %s failed integrity check", key)
	}
	return data, nil
}

// Has reports whether the store holds the given key.
func (b *BlobStore) Has(key string) bool {
	_, err := os.Stat(b.pathFor(key))
	return err == nil
}

func (b *BlobStore) pathFor(key string) string {
	if len(key) < 3 {
		return filepath.Join(b.root, "short", key)
	}
	return filepath.Join(b.root, key[:2], key[2:])
}
