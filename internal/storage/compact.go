package storage

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"flordb/internal/record"
	"flordb/internal/relation"
)

// Compactor folds WAL history into a durable table snapshot: it seals the
// active file, replays the sealed segments a previous snapshot does not
// already cover into a fresh set of tables, writes a new snapshot, and
// deletes the covered segments plus superseded snapshots.
//
// Compaction never reads a live session's in-memory tables: the snapshot is
// built purely from immutable inputs (the previous snapshot and sealed
// segments), so it is safe to run while other goroutines append to the
// active file — they only contend on the brief Seal step. Crash-safety
// follows the ordering invariants documented in the package comment: the
// snapshot is written to a temp file, fsynced, renamed into place, and the
// directory fsynced before anything is deleted.
type Compactor struct {
	WAL        *WAL
	Blobs      *BlobStore // optional; rehydrates obj_store rows for the snapshot
	RootTarget string     // ts2vid root_target for replayed commit records
	Keep       int        // snapshots to retain, including the new one (default 2)

	// RetainSegments keeps the newest N sealed segments on disk even once a
	// snapshot covers them, so a replica that has not connected yet can still
	// catch up over segments instead of a full snapshot re-seed. 0 keeps none
	// beyond what RetainFloor demands.
	RetainSegments int
	// RetainFloor, when set, returns the lowest sealed-segment sequence that
	// must survive compaction — replication supplies the lowest segment not
	// yet fetched and acked by a live follower, so compaction on the primary
	// cannot race a slow follower out of its catch-up window. Segments with
	// Seq >= RetainFloor() are kept; return MaxInt64 for "no constraint".
	// Retained covered segments are redundant for recovery (invariant 3 in
	// the package comment), so keeping them is pure space, never correctness.
	RetainFloor func() int64

	// Kill points for crash-injection tests: a hook returning an error
	// aborts compaction at exactly that step, simulating a crash. All nil in
	// production use.
	MidSnapshotWrite    func(table string) error // one table section written, file incomplete
	AfterSnapshotWrite  func() error             // temp snapshot written + fsynced, not installed
	BeforeRename        func() error             // about to rename temp snapshot into place
	AfterRename         func() error             // snapshot installed, covered segments still present
	BeforeSegmentDelete func() error             // about to delete covered segments
}

// CompactStats reports what one compaction did.
type CompactStats struct {
	SnapshotSeq      int64 // highest segment the installed snapshot covers (0 = none written)
	Rows             int   // table rows serialized into the new snapshot
	SegmentsRemoved  int
	SnapshotsRemoved int
}

// Compact runs one compaction cycle. It is a no-op (returning zero stats)
// when there are no sealed segments to fold.
func (c *Compactor) Compact() (CompactStats, error) {
	var stats CompactStats
	walPath := c.WAL.Path()

	// Clear temp files a crashed compaction left behind. Plain directory
	// listing, not filepath.Glob: the WAL path may legally contain glob
	// metacharacters.
	walDir, walBase := filepath.Split(walPath)
	if walDir == "" {
		walDir = "."
	}
	if entries, err := os.ReadDir(walDir); err == nil {
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, walBase+".snap.") && strings.HasSuffix(name, ".tmp") {
				os.Remove(filepath.Join(walDir, name))
			}
		}
	}

	if _, err := c.WAL.Seal(); err != nil {
		return stats, err
	}
	segs, err := ListSegments(walPath)
	if err != nil {
		return stats, err
	}
	if len(segs) == 0 {
		return stats, nil
	}
	upto := segs[len(segs)-1].Seq

	// Base: the newest readable snapshot, so compaction replays only the
	// delta since the last cycle. The cycle itself still costs O(live data)
	// — the base snapshot is decoded and the merged state re-serialized —
	// but never O(total history): deleted segments are gone for good.
	db := relation.NewDatabase()
	tables, err := record.CreateTables(db)
	if err != nil {
		return stats, err
	}
	baseMeta, newestSeq, err := loadNewestSnapshot(walPath, tables)
	if err != nil {
		return stats, err
	}
	base, maxTs := baseMeta.Seq, baseMeta.MaxTstamp
	if base < newestSeq {
		// A newer snapshot exists but is unreadable. If its covered segments
		// are gone, compacting from this base would bake the loss into a new
		// snapshot; replaySealed's contiguity check below catches the gap,
		// but fail early with the clearer diagnosis when nothing remains.
		if len(segs) == 0 || segs[len(segs)-1].Seq < newestSeq {
			return stats, fmt.Errorf("storage: snapshot covering segments 1..%d is unreadable and its segments were already compacted away; refusing to compact a partial database", newestSeq)
		}
	}

	if base < upto {
		// Epoch continuity: the fresh database starts at the base snapshot's
		// committed epoch and advances once per replayed commit record —
		// exactly the accounting the live session, recovery, and replica
		// apply all use — so every delta row is stamped with the epoch it was
		// originally committed under and AS OF answers survive compaction.
		db.SetEpoch(baseMeta.Epoch)
		epochs := NewEpochIndex()
		epochs.Load(baseMeta.Epochs)
		// The retention floor is the larger of what the base snapshot already
		// folded and what the last GC run persisted: versions tombstoned at
		// or below it are dropped from the new snapshot for good.
		retention, err := ReadRetention(walPath)
		if err != nil {
			return stats, err
		}
		minEpoch := max(baseMeta.MinEpoch, retention.MinEpoch)
		err = replaySealed(walPath, base, upto, func(rec any) error {
			ts, err := ApplyRecovered(rec, tables, c.Blobs, c.RootTarget)
			if err != nil {
				return err
			}
			if ts > maxTs {
				maxTs = ts
			}
			if cr, ok := rec.(*record.CommitRecord); ok {
				epochs.Note(db.AdvanceEpoch(), cr.Wall)
			}
			return nil
		})
		if err != nil {
			return stats, err
		}
		epochs.TrimBelow(minEpoch)
		meta := record.SnapshotMeta{
			Version: record.SnapshotVersion, Seq: upto, MaxTstamp: maxTs,
			Epoch: db.Epoch(), MinEpoch: minEpoch, Epochs: epochs.Stamps(),
		}
		if err := c.writeSnapshot(walPath, meta, tables); err != nil {
			return stats, err
		}
	}
	// base >= upto happens only after a crash between snapshot install and
	// segment delete: the snapshot already covers everything sealed, so all
	// that is left is reclaiming space.
	stats.SnapshotSeq = max(base, upto)
	stats.Rows = tables.Logs.Len() + tables.Loops.Len() + tables.Ts2vid.Len() +
		tables.ObjStore.Len() + tables.Args.Len()

	// Prune superseded snapshots, keeping the newest Keep (default 2: the
	// previous snapshot remains the fallback if the new one is ever
	// unreadable).
	keep := c.Keep
	if keep <= 0 {
		keep = 2
	}
	snaps, err := ListSnapshots(walPath)
	if err != nil {
		return stats, err
	}
	for i := 0; i < len(snaps)-keep; i++ {
		if err := os.Remove(snaps[i].Path); err != nil {
			return stats, fmt.Errorf("storage: prune snapshot: %w", err)
		}
		stats.SnapshotsRemoved++
	}

	if c.BeforeSegmentDelete != nil {
		if err := c.BeforeSegmentDelete(); err != nil {
			return stats, err
		}
	}
	keepFrom := int64(math.MaxInt64)
	if c.RetainFloor != nil {
		if f := c.RetainFloor(); f < keepFrom {
			keepFrom = f
		}
	}
	if c.RetainSegments > 0 {
		if f := upto - int64(c.RetainSegments) + 1; f < keepFrom {
			keepFrom = f
		}
	}
	for _, sg := range segs {
		if sg.Seq > stats.SnapshotSeq || sg.Seq >= keepFrom {
			continue
		}
		if err := os.Remove(sg.Path); err != nil {
			return stats, fmt.Errorf("storage: drop segment: %w", err)
		}
		stats.SegmentsRemoved++
	}
	if err := syncDir(filepath.Dir(walPath)); err != nil {
		return stats, err
	}
	return stats, nil
}

// writeSnapshot durably installs a snapshot: temp write, fsync, atomic
// rename, directory fsync. The kill-point hooks fire between the steps.
func (c *Compactor) writeSnapshot(walPath string, meta record.SnapshotMeta, tables *record.Tables) error {
	final := SnapshotPath(walPath, meta.Seq)
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: snapshot temp: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var mid func(string) error
	if c.MidSnapshotWrite != nil {
		mid = func(table string) error {
			// Push the buffered section to the OS first so a kill at this
			// point leaves a genuinely partial temp file on disk.
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("storage: snapshot flush: %w", err)
			}
			return c.MidSnapshotWrite(table)
		}
	}
	if err := record.WriteSnapshotHook(bw, meta, tables, mid); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("storage: snapshot flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: snapshot close: %w", err)
	}
	if c.AfterSnapshotWrite != nil {
		if err := c.AfterSnapshotWrite(); err != nil {
			return err
		}
	}
	if c.BeforeRename != nil {
		if err := c.BeforeRename(); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("storage: snapshot install: %w", err)
	}
	if err := syncDir(filepath.Dir(walPath)); err != nil {
		return err
	}
	if c.AfterRename != nil {
		if err := c.AfterRename(); err != nil {
			return err
		}
	}
	return nil
}
