package metrics

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the value
	// and within the scheme's relative error (1/16 above subBuckets).
	for _, v := range []int64{0, 1, 7, 15, 16, 17, 31, 32, 63, 100, 999,
		12345, 1_000_000, 123_456_789, 1 << 40, 1<<59 + 12345, 1 << 62} {
		i := bucketIndex(v)
		up := bucketUpper(i)
		if up < v && i != numBuckets-1 {
			t.Errorf("value %d: bucket %d upper %d < value", v, i, up)
		}
		if v >= subBuckets && i != numBuckets-1 {
			if float64(up) > float64(v)*(1+1.0/subBuckets)+1 {
				t.Errorf("value %d: upper %d exceeds relative error bound", v, up)
			}
		}
	}
	// Bucket bounds are strictly increasing, so quantiles are monotone.
	for i := 1; i < numBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket %d upper %d <= bucket %d upper %d",
				i, bucketUpper(i), i-1, bucketUpper(i-1))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v * 1000) // 1µs .. 1ms
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	p50, p95, p99 := s.P50, s.P95, s.P99
	if !(p50 <= p95 && p95 <= p99 && p99 <= s.Max) {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d max=%d", p50, p95, p99, s.Max)
	}
	// The true p50 is 500µs; the bucket scheme may over-report by ~6%.
	if p50 < 500_000 || p50 > 540_000 {
		t.Fatalf("p50 = %d, want ~500000", p50)
	}
	if p99 < 990_000 || p99 > 1_070_000 {
		t.Fatalf("p99 = %d, want ~990000", p99)
	}
	if s.Max != 1_000_000 {
		t.Fatalf("max = %d", s.Max)
	}
	if mean := s.Mean(); mean < 500_000 || mean > 501_000 {
		t.Fatalf("mean = %f", mean)
	}
}

func TestHistogramMergeEqualsSingle(t *testing.T) {
	// Observations split across workers and merged must reproduce the
	// distribution of one histogram fed everything.
	rng := rand.New(rand.NewSource(7))
	whole := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	for i := 0; i < 30_000; i++ {
		v := int64(rng.ExpFloat64() * 200_000)
		whole.Observe(v)
		parts[i%len(parts)].Observe(v)
	}
	merged := parts[0].Snapshot()
	merged.Merge(parts[1].Snapshot())
	merged.Merge(parts[2].Snapshot())
	want := whole.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum || merged.Max != want.Max {
		t.Fatalf("merged count/sum/max = %d/%d/%d, want %d/%d/%d",
			merged.Count, merged.Sum, merged.Max, want.Count, want.Sum, want.Max)
	}
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99, 1} {
		if merged.Quantile(p) != want.Quantile(p) {
			t.Fatalf("quantile(%v): merged %d != single %d", p, merged.Quantile(p), want.Quantile(p))
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 100; i++ {
		h.Observe(i * 977)
	}
	s := h.Snapshot()
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back HistSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != s.Count || back.P99 != s.P99 || len(back.Buckets) != len(s.Buckets) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, s)
	}
	// A reloaded snapshot must still merge and re-derive quantiles.
	back.Merge(&HistSnapshot{})
	if back.P99 != s.P99 {
		t.Fatalf("merge after reload changed p99: %d vs %d", back.P99, s.P99)
	}
}

func TestConcurrentObserveSnapshotsConsistent(t *testing.T) {
	// Snapshots taken while writers hammer the histogram must be internally
	// consistent: count equals the sum of bucket counts, quantiles monotone.
	h := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(int64(rng.Intn(10_000_000)))
				}
			}
		}(int64(w))
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var total int64
		for _, b := range s.Buckets {
			total += b.Count
		}
		if total != s.Count {
			t.Fatalf("snapshot %d: bucket total %d != count %d", i, total, s.Count)
		}
		if s.P50 > s.P99 {
			t.Fatalf("snapshot %d: p50 %d > p99 %d", i, s.P50, s.P99)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Histogram("sql").Observe(1000)
	r.Histogram("sql").Observe(3000)
	r.Counter("served").Add(2)
	r.Gauge("hit_rate", func() float64 { return 0.75 })
	s := r.Snapshot()
	if s.Histograms["sql"].Count != 2 {
		t.Fatalf("histogram count: %+v", s.Histograms["sql"])
	}
	if s.Counters["served"] != 2 {
		t.Fatalf("counter: %+v", s.Counters)
	}
	if s.Gauges["hit_rate"] != 0.75 {
		t.Fatalf("gauge: %+v", s.Gauges)
	}
	// Same-name lookups return the same instrument.
	if r.Histogram("sql") != r.Histogram("sql") || r.Counter("served") != r.Counter("served") {
		t.Fatal("registry lookups are not idempotent")
	}
}
