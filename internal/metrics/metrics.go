// Package metrics is the shared instrumentation layer behind the server's
// GET /metrics endpoint and the macro-benchmark suite (internal/macrobench):
// log-bucketed latency histograms, counters, and polled gauges collected in
// a named Registry. Production serving and load generation record through
// the same types, so a scenario's per-op-class report and the live /metrics
// payload are snapshots of the same structure — before/after comparisons
// (cmd/benchdiff -macro) and live dashboards read one format.
//
// Histograms are HDR-style: values land in logarithmic octaves split into
// 16 linear sub-buckets, bounding the relative quantile error at ~6% while
// keeping the whole histogram a fixed 8 KiB of atomics. Recording is
// lock-free (one atomic add per observation plus sum/max upkeep), so hot
// query paths can observe latencies without contending; snapshots copy the
// buckets and derive every exported figure (count, quantiles) from the
// copy, so a snapshot is always internally consistent — its count equals
// the sum of its bucket counts even while writers race the copy — which is
// what lets histograms from many workers merge without coordination.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	// subBucketBits fixes the linear resolution inside one octave: 2^4 = 16
	// sub-buckets bound the relative error of a bucket's upper bound at
	// 1/16 ≈ 6.25%.
	subBucketBits = 4
	subBuckets    = 1 << subBucketBits

	// maxExp caps the representable exponent; 2^59 ns ≈ 18 years, far above
	// any latency worth distinguishing. Larger values clamp into the top
	// bucket.
	maxExp     = 59
	numBuckets = (maxExp - subBucketBits + 2) * subBuckets
)

// bucketIndex maps a non-negative value to its bucket. Values below
// subBuckets are exact (one bucket per integer); above, the value's octave
// picks a block of subBuckets linear buckets.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= subBucketBits
	if exp > maxExp {
		return numBuckets - 1
	}
	sub := int(v>>(exp-subBucketBits)) - subBuckets // 0..subBuckets-1
	return (exp-subBucketBits+1)*subBuckets + sub
}

// bucketUpper returns the largest value that lands in bucket i — the value
// quantiles report for observations in the bucket (conservative: quantile
// estimates never under-report).
func bucketUpper(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	block := i >> subBucketBits // >= 1
	sub := int64(i & (subBuckets - 1))
	exp := block + subBucketBits - 1
	width := int64(1) << (exp - subBucketBits)
	return (subBuckets+sub)*width + width - 1
}

// Histogram is a concurrent, mergeable latency histogram. The zero value is
// NOT ready: use NewHistogram (the bucket array is heap-allocated so unused
// registry slots stay cheap).
type Histogram struct {
	buckets []atomic.Int64 // numBuckets slots
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Int64, numBuckets)}
}

// Observe records one value (typically nanoseconds). Negative values clamp
// to zero. Safe for concurrent use; lock-free.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot copies the histogram into an immutable, JSON-able form. Count and
// quantiles are derived from the copied buckets, so the snapshot is
// internally consistent even when taken mid-burst: Count always equals the
// sum of Buckets' counts.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{Sum: h.sum.Load(), Max: h.max.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: bucketUpper(i), Count: n})
			s.Count += n
		}
	}
	s.fillQuantiles()
	return s
}

// Bucket is one non-empty histogram bucket: Count observations at most
// Upper (and greater than the previous bucket's Upper).
type Bucket struct {
	Upper int64 `json:"upper_ns"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a Histogram. It serializes with
// its buckets, so dumps are mergeable and re-loadable (benchdiff reads the
// same JSON the /metrics endpoint and macrobench snapshots emit).
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum_ns"`
	Max     int64    `json:"max_ns"`
	P50     int64    `json:"p50_ns"`
	P95     int64    `json:"p95_ns"`
	P99     int64    `json:"p99_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// fillQuantiles recomputes the exported quantile fields from Buckets.
func (s *HistSnapshot) fillQuantiles() {
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
}

// Quantile returns the value at or below which a fraction p of observations
// fall (reported as the containing bucket's upper bound, so estimates are
// conservative and monotone in p). Zero observations report 0.
func (s *HistSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// rank is the 1-based index of the target observation.
	rank := int64(p*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	v := s.Buckets[len(s.Buckets)-1].Upper
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			v = b.Upper
			break
		}
	}
	// The bucket's upper bound can overshoot the true maximum (which is
	// tracked exactly); clamp so quantiles never exceed Max.
	if v > s.Max {
		v = s.Max
	}
	return v
}

// Mean returns the arithmetic mean of observations (exact: Sum is tracked
// alongside the buckets).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge folds other into s: bucket counts add, Sum adds, Max takes the
// larger side, and quantiles are recomputed. Merging is how per-worker
// histograms combine into one per-op-class distribution without sharing
// atomics during the measured run.
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	if other == nil || other.Count == 0 {
		s.fillQuantiles()
		return
	}
	byUpper := make(map[int64]int64, len(s.Buckets)+len(other.Buckets))
	for _, b := range s.Buckets {
		byUpper[b.Upper] += b.Count
	}
	for _, b := range other.Buckets {
		byUpper[b.Upper] += b.Count
	}
	uppers := make([]int64, 0, len(byUpper))
	for u := range byUpper {
		uppers = append(uppers, u)
	}
	sort.Slice(uppers, func(i, j int) bool { return uppers[i] < uppers[j] })
	s.Buckets = s.Buckets[:0]
	s.Count = 0
	for _, u := range uppers {
		s.Buckets = append(s.Buckets, Bucket{Upper: u, Count: byUpper[u]})
		s.Count += byUpper[u]
	}
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	s.fillQuantiles()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Registry is a named collection of histograms, counters, and polled
// gauges. Registration is idempotent and mutex-guarded; recording into a
// registered instrument is lock-free. One registry backs both the live
// /metrics endpoint and a macrobench run's report.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*Histogram
	counters map[string]*Counter
	gauges   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string]*Histogram),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() float64),
	}
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers a polled gauge: fn is evaluated at snapshot time. A
// re-registration under the same name replaces the function.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// RegistrySnapshot is the JSON shape of a registry: the /metrics payload
// body and the per-scenario instrument dump in MACRO snapshots.
type RegistrySnapshot struct {
	Histograms map[string]*HistSnapshot `json:"histograms,omitempty"`
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
}

// Snapshot captures every instrument. Gauge functions run outside the
// registry lock (they may take their own locks — e.g. plan-cache stats).
func (r *Registry) Snapshot() *RegistrySnapshot {
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for name, fn := range r.gauges {
		gauges[name] = fn
	}
	r.mu.Unlock()

	s := &RegistrySnapshot{
		Histograms: make(map[string]*HistSnapshot, len(hists)),
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
	}
	for name, h := range hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, c := range counters {
		s.Counters[name] = c.Load()
	}
	for name, fn := range gauges {
		s.Gauges[name] = fn()
	}
	return s
}

// FormatNs renders a nanosecond figure human-readably (µs/ms/s), for the
// CLI scenario report.
func FormatNs(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
