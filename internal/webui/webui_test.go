package webui

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	flor "flordb"
	"flordb/internal/docsim"
)

func testServer(t *testing.T) (*Server, *docsim.Corpus) {
	t.Helper()
	sess, err := flor.OpenMemory("pdf", flor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	corpus := docsim.Generate(docsim.Config{NumDocs: 3, MinPages: 4, MaxPages: 4, OCRFraction: 0.3, Seed: 1})
	predict := func(doc *docsim.Document) []bool {
		out := make([]bool, len(doc.Pages))
		for i, p := range doc.Pages {
			out[i] = p.FirstPage
		}
		return out
	}
	return NewServer(sess, corpus, predict), corpus
}

func TestHomeListsDocuments(t *testing.T) {
	srv, corpus := testServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, name := range corpus.DocNames() {
		if !strings.Contains(body, name) {
			t.Fatalf("home missing %s:\n%s", name, body)
		}
	}
}

func TestHomeNotFoundForOtherPaths(t *testing.T) {
	srv, _ := testServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestViewPDFModelColors(t *testing.T) {
	srv, corpus := testServer(t)
	doc := corpus.DocNames()[0]
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/view-pdf?doc="+doc, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Document string `json:"document"`
		Pages    []struct {
			Page   int    `json:"page"`
			Color  int    `json:"color"`
			Source string `json:"source"`
		} `json:"pages"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Pages) != 4 {
		t.Fatalf("pages = %d", len(resp.Pages))
	}
	// One first page => all colors 0, all from the model.
	for _, p := range resp.Pages {
		if p.Color != 0 || p.Source != "model" {
			t.Fatalf("page %d: %+v", p.Page, p)
		}
	}
}

func TestViewPDFUnknownDoc(t *testing.T) {
	srv, _ := testServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/view-pdf?doc=missing.pdf", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestSaveColorsFeedbackLoop(t *testing.T) {
	srv, corpus := testServer(t)
	doc := corpus.DocNames()[1]

	// POST expert corrections.
	body, _ := json.Marshal(map[string]any{"doc": doc, "colors": []int{0, 0, 1, 1}})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/save_colors", bytes.NewReader(body))
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}

	// The labels are now visible with human provenance.
	views, err := srv.GetColors(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1}
	for i, v := range views {
		if v.Color != want[i] || v.Source != "human" {
			t.Fatalf("page %d: %+v", i, v)
		}
	}

	// Other documents still use model colors (provenance isolation).
	other, err := srv.GetColors(corpus.DocNames()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range other {
		if v.Source != "model" {
			t.Fatalf("other doc got human label: %+v", v)
		}
	}

	// The feedback is durable metadata: queryable via SQL with iteration
	// context linking it to the document.
	res, err := srv.Sess.SQL(`
		SELECT count(*) AS n FROM logs l JOIN loops o ON l.ctx_id = o.ctx_id
		WHERE l.value_name = 'page_color' AND o.loop_name = 'page'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 4 {
		t.Fatalf("page_color provenance rows: %v", res.Rows)
	}
}

func TestSaveColorsLatestWins(t *testing.T) {
	srv, corpus := testServer(t)
	doc := corpus.DocNames()[0]
	if err := srv.SaveColors(doc, []int{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := srv.SaveColors(doc, []int{0, 1, 1, 2}); err != nil {
		t.Fatal(err)
	}
	views, err := srv.GetColors(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i, v := range views {
		if v.Color != want[i] {
			t.Fatalf("latest labels not used: page %d = %+v", i, v)
		}
	}
}

func TestSaveColorsValidation(t *testing.T) {
	srv, corpus := testServer(t)
	if err := srv.SaveColors("missing.pdf", []int{1}); err == nil {
		t.Fatal("unknown doc must fail")
	}
	if err := srv.SaveColors(corpus.DocNames()[0], []int{1}); err == nil {
		t.Fatal("wrong arity must fail")
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/save_colors", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET save_colors = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/save_colors", strings.NewReader("{bad json")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json = %d", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	srv.Sess.SetFilename("train.go")
	for it := srv.Sess.Loop("epoch", 2); it.Next(); {
		srv.Sess.Log("acc", 0.9)
		srv.Sess.Log("recall", 0.8)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "acc,recall") || !strings.Contains(body, "0.9,0.8") {
		t.Fatalf("metrics csv:\n%s", body)
	}
}

func TestConcurrentGetColorsWhileSaving(t *testing.T) {
	// Regression test for the snapshot migration: handlers used to read the
	// live tables per request with no consistency guarantee. Now every read
	// pins a snapshot, so concurrent save_colors writers can neither race
	// the read (run with -race) nor surface a torn label set: a document's
	// labels are written in one transaction, so a reader must observe all
	// four pages human-labeled or none.
	srv, corpus := testServer(t)
	doc := corpus.DocNames()[0]

	// The writer is bounded: snapshot readers exert no backpressure, so an
	// unbounded save loop would outrun any fixed reader iteration count.
	done := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		defer close(done)
		for i := 0; i < 30; i++ {
			if err := srv.SaveColors(doc, []int{i % 3, i % 3, 1, 1}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for running := true; running; {
				select {
				case <-done:
					running = false // one final read below observes the end state
				default:
				}
				views, err := srv.GetColors(doc)
				if err != nil {
					t.Error(err)
					return
				}
				human := 0
				for _, v := range views {
					if v.Source == "human" {
						human++
					}
				}
				if human != 0 && human != len(views) {
					t.Errorf("torn read: %d of %d pages human-labeled", human, len(views))
					return
				}
				// The metrics endpoint stays serveable under write load.
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/metrics", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("metrics status = %d", rec.Code)
					return
				}
			}
		}()
	}
	writer.Wait()
	readers.Wait()

	// After the writer finishes, the final committed labels are visible.
	views, err := srv.GetColors(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if v.Source != "human" {
			t.Fatalf("final read missing human labels: %+v", views)
		}
	}
}
