// Package webui is the reproduction of the paper's Flask feedback
// application (§4.4, Figure 6): a web server that displays documents and
// model predictions, and captures human label corrections through the same
// FlorDB metadata infrastructure as computational steps — provenance for
// machine-generated and human-provided labels alike.
//
// Routes mirror the paper:
//
//	GET  /             — home page listing documents
//	GET  /view-pdf     — one document's pages with current page colors
//	POST /save_colors  — expert corrections, logged via flor.iteration +
//	                     flor.loop("page") + flor.commit (Figure 6's code)
//	GET  /api/metrics  — the model-registry view (acc/recall dataframe)
package webui

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strconv"

	flor "flordb"
	"flordb/internal/docsim"
	"flordb/internal/relation"
	"flordb/internal/script"
)

// Server wires the feedback UI to a FlorDB session and a document corpus.
type Server struct {
	Sess   *flor.Session
	Corpus *docsim.Corpus
	// Predict returns the model's first-page probability per page of a
	// document; used to derive default page colors when no human labels
	// exist (get_colors() in Figure 6).
	Predict func(doc *docsim.Document) []bool

	mux *http.ServeMux
}

// NewServer builds the server and its routes.
func NewServer(sess *flor.Session, corpus *docsim.Corpus, predict func(*docsim.Document) []bool) *Server {
	s := &Server{Sess: sess, Corpus: corpus, Predict: predict, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleHome)
	s.mux.HandleFunc("/view-pdf", s.handleViewPDF)
	s.mux.HandleFunc("/save_colors", s.handleSaveColors)
	s.mux.HandleFunc("/api/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var homeTmpl = template.Must(template.New("home").Parse(`<!doctype html>
<html><head><title>FlorDB PDF Parser</title></head><body>
<h1>PDF Parser</h1>
<ul>
{{range .}}<li><a href="/view-pdf?doc={{.}}">{{.}}</a></li>
{{end}}</ul>
</body></html>`))

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := homeTmpl.Execute(w, s.Corpus.DocNames()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// pageView is one page in the view-pdf response.
type pageView struct {
	Page    int    `json:"page"`
	TextSrc string `json:"text_src"`
	Color   int    `json:"color"`
	Source  string `json:"source"` // "human" or "model"
}

// GetColors reproduces Figure 6's get_colors(): fetch the latest page_color
// labels for the document; where human labels are absent, derive colors from
// the model's first_page predictions via cumulative sum.
//
// The read runs against a snapshot pinned at call time: a concurrent
// save_colors script (or any other writer) can neither block the request
// nor be observed mid-transaction.
func (s *Server) GetColors(docName string) ([]pageView, error) {
	doc, ok := s.Corpus.Doc(docName)
	if !ok {
		return nil, fmt.Errorf("webui: no document %q", docName)
	}
	n := len(doc.Pages)
	views := make([]pageView, n)
	for i := range views {
		views[i] = pageView{Page: i, TextSrc: doc.Pages[i].TextSrc, Color: -1}
	}

	// Human labels: flor.dataframe("page_color"), latest, this document.
	// Committed-epoch snapshot: save_colors writes a document's labels in
	// one script transaction, and script runs (with their commits) are
	// serialized by the session, so this read sees all of a label set or
	// none — never a half-written one.
	view, err := s.Sess.Reader()
	if err != nil {
		return nil, err
	}
	defer view.Close()
	df, err := view.Dataframe("page_color")
	if err == nil && df.Len() > 0 {
		di := df.Index("document_value")
		pi := df.Index("page_value")
		ci := df.Index("page_color")
		if di >= 0 && pi >= 0 && ci >= 0 {
			sub := df.Filter(func(r relation.Row) bool {
				return !r[di].IsNull() && r[di].AsText() == docName
			}).Latest()
			for _, r := range sub.Rows {
				if r[pi].IsNull() || r[ci].IsNull() {
					continue
				}
				p, err := strconv.Atoi(r[pi].AsText())
				if err != nil || p < 0 || p >= n {
					continue
				}
				c, err := relation.Coerce(r[ci], relation.TInt)
				if err != nil {
					continue
				}
				views[p].Color = int(c.AsInt())
				views[p].Source = "human"
			}
		}
	}

	// Fill gaps from model predictions: color = cumsum(first_page) - 1.
	if s.Predict != nil {
		firsts := s.Predict(doc)
		cum := 0
		for i := 0; i < n && i < len(firsts); i++ {
			if firsts[i] {
				cum++
			}
			if views[i].Color < 0 {
				views[i].Color = cum - 1
				views[i].Source = "model"
			}
		}
	}
	return views, nil
}

func (s *Server) handleViewPDF(w http.ResponseWriter, r *http.Request) {
	doc := r.URL.Query().Get("doc")
	views, err := s.GetColors(doc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"document": doc, "pages": views})
}

// saveColorsRequest is the POST body for /save_colors.
type saveColorsRequest struct {
	Doc    string `json:"doc"`
	Colors []int  `json:"colors"`
}

// SaveColors reproduces Figure 6's save_colors(): log each page's color
// under a flor.iteration("document") context and commit.
func (s *Server) SaveColors(docName string, colors []int) error {
	doc, ok := s.Corpus.Doc(docName)
	if !ok {
		return fmt.Errorf("webui: no document %q", docName)
	}
	if len(colors) != len(doc.Pages) {
		return fmt.Errorf("webui: %d colors for %d pages", len(colors), len(doc.Pages))
	}
	src := fmt.Sprintf(`colors = __colors__()
with flor.iteration("document", nil, %q) {
    for i in flor.loop("page", range(%d)) {
        flor.log("page_color", colors[i])
    }
}
flor.commit()
`, docName, len(colors))
	vals := make([]script.Value, len(colors))
	for i, c := range colors {
		vals[i] = int64(c)
	}
	s.Sess.RegisterHost("__colors__", func([]script.Value, map[string]script.Value) (script.Value, error) {
		return script.NewList(append([]script.Value(nil), vals...)...), nil
	})
	return s.Sess.RunScript("webui.flow", src)
}

func (s *Server) handleSaveColors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req saveColorsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.SaveColors(req.Doc, req.Colors); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"message": "Colors saved"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Snapshot read: the model-registry view is consistent even while a
	// training run streams new metrics into the session.
	view, err := s.Sess.LatestReader()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer view.Close()
	df, err := view.Dataframe("acc", "recall")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	fmt.Fprint(w, df.ToCSV())
}
