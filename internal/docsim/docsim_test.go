package docsim

import (
	"strings"
	"testing"

	"flordb/internal/mlsim"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if len(a.Docs) != len(b.Docs) {
		t.Fatal("doc counts differ")
	}
	for i := range a.Docs {
		if len(a.Docs[i].Pages) != len(b.Docs[i].Pages) {
			t.Fatalf("doc %d page counts differ", i)
		}
		for j := range a.Docs[i].Pages {
			if a.Docs[i].Pages[j].Text != b.Docs[i].Pages[j].Text {
				t.Fatalf("doc %d page %d text differs", i, j)
			}
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{NumDocs: 5, MinPages: 2, MaxPages: 4, OCRFraction: 0.5, Seed: 9}
	c := Generate(cfg)
	if len(c.Docs) != 5 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
	for _, d := range c.Docs {
		if len(d.Pages) < 2 || len(d.Pages) > 4 {
			t.Fatalf("pages = %d", len(d.Pages))
		}
		if !d.Pages[0].FirstPage {
			t.Fatal("page 0 must be first page")
		}
		for i, p := range d.Pages {
			if i > 0 && p.FirstPage {
				t.Fatal("non-zero page marked first")
			}
			if p.TextSrc != "TXT" && p.TextSrc != "OCR" {
				t.Fatalf("text_src = %q", p.TextSrc)
			}
			if p.DocName != d.Name || p.Number != i {
				t.Fatalf("page identity: %+v", p)
			}
		}
	}
}

func TestOCRFractionRoughlyHolds(t *testing.T) {
	c := Generate(Config{NumDocs: 40, MinPages: 5, MaxPages: 5, OCRFraction: 0.4, Seed: 3})
	ocr := 0
	for _, d := range c.Docs {
		for _, p := range d.Pages {
			if p.TextSrc == "OCR" {
				ocr++
			}
		}
	}
	frac := float64(ocr) / float64(c.NumPages())
	if frac < 0.3 || frac > 0.5 {
		t.Fatalf("OCR fraction = %v", frac)
	}
}

func TestAnalyzeTextExtractsFeatures(t *testing.T) {
	c := Generate(DefaultConfig())
	p := c.Docs[0].Pages[0]
	f := AnalyzeText(p.Text)
	if len(f.Headings) == 0 {
		t.Fatalf("no headings in:\n%s", p.Text)
	}
	if f.Headings[0] != p.Heading && p.TextSrc == "TXT" {
		t.Fatalf("heading mismatch: %v vs %s", f.Headings, p.Heading)
	}
	if p.TextSrc == "TXT" && (len(f.PageNumbers) != 1 || f.PageNumbers[0] != 1) {
		t.Fatalf("page numbers: %v", f.PageNumbers)
	}
	if !f.HasCaseNo {
		t.Fatal("first page must carry a case number")
	}
	if f.WordCount == 0 {
		t.Fatal("word count zero")
	}
	// Non-first page lacks the case number.
	f2 := AnalyzeText(c.Docs[0].Pages[1].Text)
	if f2.HasCaseNo {
		t.Fatal("non-first page should lack case number")
	}
}

func TestVectorizeShapeAndSignal(t *testing.T) {
	c := Generate(DefaultConfig())
	first := Vectorize(c.Docs[0].Pages[0], 16)
	rest := Vectorize(c.Docs[0].Pages[1], 16)
	if len(first) != 16 || len(rest) != 16 {
		t.Fatal("vector width")
	}
	// The case-number feature separates first pages.
	if first[0] != 1 || rest[0] != 0 {
		t.Fatalf("first-page signal: %v vs %v", first[0], rest[0])
	}
	// Degenerate dim is clamped.
	if len(Vectorize(c.Docs[0].Pages[0], 2)) != 8 {
		t.Fatal("dim clamp")
	}
}

func TestToDatasetAndLearnability(t *testing.T) {
	c := Generate(Config{NumDocs: 30, MinPages: 4, MaxPages: 6, OCRFraction: 0.4, Seed: 11})
	d := c.ToDataset(16)
	if d.Len() != c.NumPages() {
		t.Fatalf("dataset size %d != pages %d", d.Len(), c.NumPages())
	}
	firsts := 0
	for _, y := range d.Y {
		if y == 1 {
			firsts++
		}
	}
	if firsts != 30 {
		t.Fatalf("first pages = %d", firsts)
	}
	// The first-page task must be learnable: train a small net.
	rng := mlsim.NewRNG(5)
	train, test := d.Split(0.3, rng)
	m := mlsim.NewMLP(16, 12, 2, rng)
	opt := mlsim.NewSGD(m, 0.05, 0.9)
	for epoch := 0; epoch < 10; epoch++ {
		for _, b := range train.Shuffled(rng).Batches(16) {
			opt.Step(m, b.X, b.Y)
		}
	}
	acc := mlsim.Evaluate(m, test).Accuracy
	if acc < 0.9 {
		t.Fatalf("first-page classifier accuracy = %v", acc)
	}
}

func TestOCRNoiseActuallyCorrupts(t *testing.T) {
	c := Generate(Config{NumDocs: 20, MinPages: 3, MaxPages: 3, OCRFraction: 1.0, Seed: 2})
	sawNoise := false
	for _, d := range c.Docs {
		for _, p := range d.Pages {
			if strings.ContainsAny(p.Text, "01") && p.TextSrc == "OCR" {
				sawNoise = true
			}
		}
	}
	if !sawNoise {
		t.Fatal("OCR noise never appeared")
	}
}

func TestCorpusLookups(t *testing.T) {
	c := Generate(DefaultConfig())
	names := c.DocNames()
	if len(names) != len(c.Docs) || names[0] != "doc000.pdf" {
		t.Fatalf("names: %v", names)
	}
	d, ok := c.Doc("doc000.pdf")
	if !ok || d.Name != "doc000.pdf" {
		t.Fatal("doc lookup failed")
	}
	if _, ok := c.Doc("missing.pdf"); ok {
		t.Fatal("missing doc lookup must fail")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Config{NumDocs: 0, MinPages: 1, MaxPages: 1})
}
