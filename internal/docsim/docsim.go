// Package docsim synthesizes the document-intelligence corpus the paper's
// PDF Parser demo runs on (§4): multi-page documents whose pages carry text
// from either a clean embedded-text source ("TXT") or a noisy OCR pass
// ("OCR"), with headings, page numbers, and a first-page signal.
//
// The paper uses real PDFs; we have none offline. The generator preserves
// everything the pipeline's code paths exercise: per-document page loops
// (Figure 3), extractable features (headings, page_numbers, text_src),
// a learnable first-page-classification task (Figure 5 trains a page
// classifier), and stable document identities for the feedback UI
// (Figure 6's page_color corrections).
package docsim

import (
	"fmt"
	"strings"

	"flordb/internal/mlsim"
)

// Page is one page of a synthetic document.
type Page struct {
	DocName   string
	Number    int // 0-based within the document
	TextSrc   string
	Text      string
	Heading   string
	FirstPage bool
}

// Document is a synthetic multi-page document.
type Document struct {
	Name  string
	Pages []Page
}

// Corpus is a set of documents.
type Corpus struct {
	Docs []Document
}

// Config tunes corpus generation.
type Config struct {
	NumDocs  int
	MinPages int
	MaxPages int
	// OCRFraction of pages come from the (noisy) OCR source.
	OCRFraction float64
	Seed        uint64
}

// DefaultConfig matches the scale of the paper's demo corpus.
func DefaultConfig() Config {
	return Config{NumDocs: 8, MinPages: 3, MaxPages: 9, OCRFraction: 0.4, Seed: 1}
}

var headingWords = []string{
	"Introduction", "Background", "Motion", "Declaration", "Exhibit",
	"Findings", "Order", "Summary", "Appendix", "Testimony",
}

var bodyWords = []string{
	"court", "evidence", "record", "defendant", "plaintiff", "filed",
	"pursuant", "hereby", "motion", "document", "page", "case", "counsel",
	"exhibit", "sworn", "statement", "date", "signature", "county", "state",
}

// Generate builds a deterministic corpus.
func Generate(cfg Config) *Corpus {
	if cfg.NumDocs < 1 || cfg.MinPages < 1 || cfg.MaxPages < cfg.MinPages {
		panic(fmt.Sprintf("docsim: bad config %+v", cfg))
	}
	rng := mlsim.NewRNG(cfg.Seed)
	corpus := &Corpus{}
	for d := 0; d < cfg.NumDocs; d++ {
		name := fmt.Sprintf("doc%03d.pdf", d)
		n := cfg.MinPages + rng.Intn(cfg.MaxPages-cfg.MinPages+1)
		doc := Document{Name: name}
		for p := 0; p < n; p++ {
			src := "TXT"
			if rng.Float64() < cfg.OCRFraction {
				src = "OCR"
			}
			heading := headingWords[rng.Intn(len(headingWords))]
			text := synthText(rng, heading, p, src, p == 0)
			doc.Pages = append(doc.Pages, Page{
				DocName: name, Number: p, TextSrc: src, Text: text,
				Heading: heading, FirstPage: p == 0,
			})
		}
		corpus.Docs = append(corpus.Docs, doc)
	}
	return corpus
}

// synthText composes page text: first pages lead with a title block and the
// heading; OCR pages get character-level noise.
func synthText(rng *mlsim.RNG, heading string, pageNo int, src string, first bool) string {
	var sb strings.Builder
	if first {
		sb.WriteString("IN THE SUPERIOR COURT\n")
		sb.WriteString("CASE NO. ")
		sb.WriteString(fmt.Sprintf("%05d", rng.Intn(100000)))
		sb.WriteString("\n")
	}
	sb.WriteString("# ")
	sb.WriteString(heading)
	sb.WriteString("\n")
	sentences := 3 + rng.Intn(4)
	for s := 0; s < sentences; s++ {
		words := 6 + rng.Intn(8)
		for w := 0; w < words; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(bodyWords[rng.Intn(len(bodyWords))])
		}
		sb.WriteString(".\n")
	}
	sb.WriteString(fmt.Sprintf("- %d -\n", pageNo+1))
	text := sb.String()
	if src == "OCR" {
		text = ocrNoise(rng, text)
	}
	return text
}

// ocrNoise corrupts ~2% of letters, mimicking OCR substitution errors.
func ocrNoise(rng *mlsim.RNG, text string) string {
	b := []byte(text)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' && rng.Float64() < 0.02 {
			switch b[i] {
			case 'o':
				b[i] = '0'
			case 'l':
				b[i] = '1'
			case 'e':
				b[i] = 'c'
			default:
				b[i] = byte('a' + rng.Intn(26))
			}
		}
	}
	return string(b)
}

// Features extracted from a page by the Figure-3 featurizer.
type Features struct {
	Headings    []string
	PageNumbers []int
	WordCount   int
	HasCaseNo   bool
}

// AnalyzeText extracts headings and page numbers from page text — the
// analyze_text(page_text) call in Figure 3.
func AnalyzeText(text string) Features {
	var f Features
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "# ") {
			f.Headings = append(f.Headings, strings.TrimPrefix(line, "# "))
		}
		if strings.HasPrefix(line, "- ") && strings.HasSuffix(line, " -") {
			var n int
			if _, err := fmt.Sscanf(line, "- %d -", &n); err == nil {
				f.PageNumbers = append(f.PageNumbers, n)
			}
		}
		if strings.HasPrefix(line, "CASE NO.") {
			f.HasCaseNo = true
		}
		f.WordCount += len(strings.Fields(line))
	}
	return f
}

// Vectorize turns a page into a fixed-width feature vector for the
// first-page classifier (Figure 5's training task): character histogram
// over a small alphabet plus structural features.
func Vectorize(p Page, dim int) []float64 {
	if dim < 8 {
		dim = 8
	}
	v := make([]float64, dim)
	feats := AnalyzeText(p.Text)
	if feats.HasCaseNo {
		v[0] = 1
	}
	v[1] = float64(len(feats.Headings))
	v[2] = float64(feats.WordCount) / 100.0
	if p.TextSrc == "OCR" {
		v[3] = 1
	}
	if strings.Contains(p.Text, "SUPERIOR COURT") {
		v[4] = 1
	}
	v[5] = float64(len(p.Text)) / 1000.0
	// Character histogram folded into the remaining slots.
	for i := 0; i < len(p.Text); i++ {
		c := p.Text[i]
		if c >= 'a' && c <= 'z' {
			v[6+int(c-'a')%(dim-6)]++
		}
	}
	for i := 6; i < dim; i++ {
		v[i] /= 50.0
	}
	return v
}

// ToDataset converts a corpus into a first-page classification dataset.
func (c *Corpus) ToDataset(dim int) *mlsim.Dataset {
	d := &mlsim.Dataset{Classes: 2}
	for _, doc := range c.Docs {
		for _, p := range doc.Pages {
			d.X = append(d.X, Vectorize(p, dim))
			y := 0
			if p.FirstPage {
				y = 1
			}
			d.Y = append(d.Y, y)
		}
	}
	return d
}

// NumPages counts pages across the corpus.
func (c *Corpus) NumPages() int {
	n := 0
	for _, d := range c.Docs {
		n += len(d.Pages)
	}
	return n
}

// DocNames lists document names in order.
func (c *Corpus) DocNames() []string {
	out := make([]string, len(c.Docs))
	for i, d := range c.Docs {
		out[i] = d.Name
	}
	return out
}

// Doc returns a document by name.
func (c *Corpus) Doc(name string) (*Document, bool) {
	for i := range c.Docs {
		if c.Docs[i].Name == name {
			return &c.Docs[i], true
		}
	}
	return nil, false
}
